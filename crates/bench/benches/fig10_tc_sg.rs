//! Figure 10: TC and SG on the Gn-p family across systems.
//!
//! System stand-ins (DESIGN.md §3): RecStep = this engine (PBME);
//! BigDatalog = generic parallel configuration (`Config::no_op()`);
//! Souffle = set-based semi-naïve with rayon; Bddbddb = the BDD engine
//! (TC only — SG is not a composition the BDD engine evaluates).

use recstep::{Config, PbmeMode};
use recstep_baselines::{bdd, setbased::SetEngine};
use recstep_bench::*;
use recstep_graphgen::{as_values, gnp};

fn recstep_run(program: &str, rel: &str, edges: &[(i64, i64)], cfg: Config) -> Outcome {
    run_recstep(cfg.threads(max_threads()), program, &[("arc", edges)], rel)
}

fn setbased_run(program: &str, rel: &str, edges: &[(i64, i64)]) -> Outcome {
    let mut e = SetEngine::new(true);
    e.tuple_budget = Some(budget_tuples());
    e.load_edges("arc", edges);
    measure(|| e.run_source(program).map(|_| e.row_count(rel)))
}

fn main() {
    let s = scale();
    header("Figure 10", "TC and SG across systems on Gn-p graphs");
    for (program, rel, label) in [
        (recstep::programs::TC, "tc", "TC"),
        (recstep::programs::SG, "sg", "SG"),
    ] {
        println!("  ({label})");
        row(&cells(&[
            "graph",
            "RecStep",
            "BigDatalog~",
            "Souffle~",
            "Bddbddb~",
            "rows",
        ]));
        for spec in gnp::paper_gnp_specs(s) {
            let edges = as_values(&gnp::gnp(
                spec.n,
                (spec.p * (s as f64).min(20.0)).min(0.5),
                3,
            ));
            let rs = recstep_run(
                program,
                rel,
                &edges,
                Config::default().pbme(PbmeMode::Force),
            );
            let bigd = recstep_run(program, rel, &edges, Config::no_op());
            let souffle = setbased_run(program, rel, &edges);
            let bddb = if label == "TC" && edges.len() < 60_000 {
                let t0 = std::time::Instant::now();
                let (pairs, _) = bdd::bdd_tc(&edges);
                Outcome::Ok {
                    time: t0.elapsed(),
                    rows: pairs.len(),
                }
            } else {
                Outcome::Unsupported
            };
            // Cross-check row counts of whoever completed.
            let counts: Vec<usize> = [&rs, &bigd, &souffle, &bddb]
                .iter()
                .filter_map(|o| o.rows())
                .collect();
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "{label} {}: {counts:?}",
                spec.name
            );
            row(&[
                format!("{}-sim(n={})", spec.name, spec.n),
                rs.cell(),
                bigd.cell(),
                souffle.cell(),
                bddb.cell(),
                counts.first().map(|c| c.to_string()).unwrap_or_default(),
            ]);
        }
    }
}
