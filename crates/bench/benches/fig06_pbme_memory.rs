//! Figure 6: memory saving of PBME on TC and SG over Gn-p graphs.
//! NON-PBME on the larger graphs exhausts the budget (the paper's
//! "(failed)" series); PBME completes within a flat bit-matrix footprint.

use recstep::{Config, PbmeMode};
use recstep_bench::*;
use recstep_common::mem::{self, CountingAlloc};
use recstep_graphgen::{as_values, gnp::gnp};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn run(program: &str, rel: &str, edges: &[(i64, i64)], pbme: PbmeMode) -> (Outcome, usize) {
    let prog = prepared(Config::default().pbme(pbme).threads(max_threads()), program);
    let mut db = db_with_edges(&[("arc", edges)]);
    mem::reset_peak();
    let out = measure(|| prog.run(&mut db).map(|_| db.row_count(rel)));
    (out, mem::peak_bytes())
}

fn main() {
    let s = scale();
    header(
        "Figure 6",
        "Memory saving of PBME on TC and SG (Gn-p graphs)",
    );
    row(&cells(&[
        "workload",
        "graph",
        "mode",
        "time",
        "peak alloc",
        "rows",
    ]));
    let tc_sizes = [(10_000u32, "G10K"), (20_000, "G20K"), (40_000, "G40K")];
    for &(n_full, name) in &tc_sizes {
        let n = (n_full / s).max(32);
        let edges = as_values(&gnp(n, 0.001f64 * s as f64, 7));
        for (mode, label) in [(PbmeMode::Off, "NON-PBME"), (PbmeMode::Force, "PBME")] {
            let (out, peak) = run(recstep::programs::TC, "tc", &edges, mode);
            row(&[
                "TC".into(),
                format!("{name}-sim(n={n})"),
                label.into(),
                out.cell(),
                mem::fmt_bytes(peak),
                out.rows().map(|r| r.to_string()).unwrap_or_default(),
            ]);
        }
    }
    let sg_sizes = [(5_000u32, "G5K"), (10_000, "G10K"), (20_000, "G20K")];
    for &(n_full, name) in &sg_sizes {
        let n = (n_full / s).max(32);
        let edges = as_values(&gnp(n, 0.001f64 * s as f64, 9));
        for (mode, label) in [(PbmeMode::Off, "NON-PBME"), (PbmeMode::Force, "PBME")] {
            let (out, peak) = run(recstep::programs::SG, "sg", &edges, mode);
            row(&[
                "SG".into(),
                format!("{name}-sim(n={n})"),
                label.into(),
                out.cell(),
                mem::fmt_bytes(peak),
                out.rows().map(|r| r.to_string()).unwrap_or_default(),
            ]);
        }
    }
}
