//! Design-choice ablation: compact concatenated keys (FAST-DEDUP) vs. the
//! generic hashed global table vs. sort-based dedup, at growing batch
//! sizes (the paper's Figure 2 shows only the end-to-end effect).

use recstep_bench::*;
use recstep_exec::dedup::{deduplicate, DedupImpl};
use recstep_exec::ExecCtx;
use recstep_storage::{Relation, Schema};
use std::time::Instant;

fn main() {
    header(
        "Ablation",
        "dedup implementations: CCK vs generic-hash vs sort",
    );
    let ctx = ExecCtx::with_threads(max_threads());
    row(&cells(&["rows", "CCK", "generic", "sort", "distinct"]));
    for exp in [14u32, 16, 18, 20] {
        let n = (1usize << exp) / (scale().max(1) as usize / 8).max(1);
        let mut rel = Relation::new(Schema::with_arity("t", 2));
        for i in 0..n as i64 {
            rel.push_row(&[i % 10_007, (i * 3) % 4_999]);
        }
        let time_for = |imp: DedupImpl| -> (f64, usize) {
            let t0 = Instant::now();
            let out = deduplicate(&ctx, rel.view(), imp, n);
            (t0.elapsed().as_secs_f64(), out.cols[0].len())
        };
        let (fast, d1) = time_for(DedupImpl::Fast);
        let (generic, d2) = time_for(DedupImpl::Generic);
        let (sort, d3) = time_for(DedupImpl::Sort);
        assert!(d1 == d2 && d2 == d3);
        row(&[
            n.to_string(),
            format!("{fast:.4}s"),
            format!("{generic:.4}s"),
            format!("{sort:.4}s"),
            d1.to_string(),
        ]);
    }
}
