//! Figure 12: REACH, CC and SSSP on the RMAT family across systems.
//! Souffle~ lacks recursive aggregation (paper Table 1), so its CC/SSSP
//! cells are "-" exactly as in the paper's plots.

use recstep::{Config, PbmeMode};
use recstep_baselines::setbased::SetEngine;
use recstep_bench::*;
use recstep_graphgen::{as_values, rmat, with_weights};

fn main() {
    let s = scale();
    header(
        "Figure 12",
        "REACH / CC / SSSP on RMAT graphs across systems",
    );
    let specs: Vec<_> = rmat::paper_rmat_specs(s * 8).into_iter().take(5).collect();
    for workload in ["REACH", "CC", "SSSP"] {
        println!("  ({workload})");
        row(&cells(&["graph", "RecStep", "BigDatalog~", "Souffle~"]));
        for spec in &specs {
            let raw = rmat::rmat(spec.n, spec.m, 5);
            let sources = source_vertices(spec.n, 2);
            let run_one = |cfg: Config| -> Outcome {
                match workload {
                    "REACH" => {
                        // Average over the source vertices (paper: 10 random);
                        // one compilation serves every source.
                        let prog =
                            prepared(cfg.clone().threads(max_threads()), recstep::programs::REACH);
                        let edges = as_values(&raw);
                        let mut total = std::time::Duration::ZERO;
                        let mut rows = 0;
                        for &src in &sources {
                            let mut db = db_with_edges(&[("arc", &edges)]);
                            db.load_relation("id", 1, &[vec![src]]).unwrap();
                            match measure(|| prog.run(&mut db).map(|_| db.row_count("reach"))) {
                                Outcome::Ok { time, rows: r } => {
                                    total += time;
                                    rows = r;
                                }
                                other => return other,
                            }
                        }
                        Outcome::Ok {
                            time: total / sources.len() as u32,
                            rows,
                        }
                    }
                    "CC" => run_recstep(
                        cfg.clone().threads(max_threads()),
                        recstep::programs::CC,
                        &[("arc", &as_values(&raw))],
                        "cc3",
                    ),
                    _ => {
                        let prog =
                            prepared(cfg.clone().threads(max_threads()), recstep::programs::SSSP);
                        let mut db = recstep::Database::new().unwrap();
                        db.load_weighted_edges("arc", &with_weights(&raw, 100, 9))
                            .unwrap();
                        db.load_relation("id", 1, &[vec![sources[0]]]).unwrap();
                        measure(|| prog.run(&mut db).map(|_| db.row_count("sssp")))
                    }
                }
            };
            let rs = run_one(Config::default().pbme(PbmeMode::Off));
            let bigd = run_one(Config::no_op());
            let souffle = if workload == "REACH" {
                let mut e = SetEngine::new(true);
                e.tuple_budget = Some(budget_tuples());
                e.load_edges("arc", &as_values(&raw));
                e.load("id", [vec![sources[0]]]);
                measure(|| {
                    e.run_source(recstep::programs::REACH)
                        .map(|_| e.row_count("reach"))
                })
            } else {
                Outcome::Unsupported // no recursive aggregation (Table 1)
            };
            row(&[
                spec.name.to_string(),
                rs.cell(),
                bigd.cell(),
                souffle.cell(),
            ]);
        }
    }
}
