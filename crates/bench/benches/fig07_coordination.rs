//! Figure 7: SG-PBME with coordination vs. without, on a skewed G20K-sim —
//! CPU utilization over time, wall time and memory; plus a threshold sweep
//! (the trade-off the paper describes for the work-order threshold t).

use recstep::{Config, PbmeMode};
use recstep_bench::*;
use recstep_common::mem::{self, CountingAlloc};
use recstep_graphgen::as_values;
use std::time::Duration;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A skewed graph: a few hub parents with huge fan-out plus a sparse rest —
/// the regime where zero-coordination SG-PBME starves most threads.
fn skewed(n: u32, seed: u64) -> Vec<(i64, i64)> {
    let mut edges = recstep_graphgen::rmat::rmat(n, n as usize * 6, seed);
    let fan = (n / 8).max(8);
    for i in 0..fan {
        edges.push((0, 1 + (i % (n - 1))));
    }
    as_values(&edges)
}

fn main() {
    let n = (20_000u32 / scale()).max(64);
    let edges = skewed(n, 3);
    header(
        "Figure 7",
        &format!("SG-PBME coordination vs. none (skewed G20K-sim, n={n})"),
    );
    row(&cells(&[
        "variant",
        "time",
        "mean util",
        "peak alloc",
        "orders",
        "sg rows",
    ]));
    for (label, coord) in [
        ("PBME-NO-COORD", None),
        ("PBME-COORD(t=256)", Some(256usize)),
    ] {
        let engine = recstep_engine(
            Config::default()
                .pbme(PbmeMode::Force)
                .pbme_coordination(coord)
                .threads(max_threads()),
        );
        let prog = engine.prepare(recstep::programs::SG).unwrap();
        let mut db = db_with_edges(&[("arc", &edges)]);
        let pool = engine.pool_handle();
        mem::reset_peak();
        let busy0 = pool.busy_ns_total();
        let t0 = std::time::Instant::now();
        let stats = prog.run(&mut db).unwrap();
        let wall = t0.elapsed();
        let busy = pool.busy_ns_total() - busy0;
        let util = busy as f64 / (wall.as_nanos() as f64 * pool.threads() as f64);
        row(&[
            label.into(),
            format!("{:.3}s", wall.as_secs_f64()),
            format!("{:.0}%", util.min(1.0) * 100.0),
            mem::fmt_bytes(mem::peak_bytes()),
            stats.coord_orders_posted.to_string(),
            db.row_count("sg").to_string(),
        ]);
    }
    println!("\n  threshold sweep (coordination trade-off):");
    row(&cells(&["threshold", "time", "orders posted"]));
    for t in [16usize, 256, 4096, 65536] {
        let prog = prepared(
            Config::default()
                .pbme(PbmeMode::Force)
                .pbme_coordination(Some(t))
                .threads(max_threads()),
            recstep::programs::SG,
        );
        let mut db = db_with_edges(&[("arc", &edges)]);
        let t0 = std::time::Instant::now();
        let stats = prog.run(&mut db).unwrap();
        row(&[
            t.to_string(),
            format!("{:.3}s", t0.elapsed().as_secs_f64()),
            stats.coord_orders_posted.to_string(),
        ]);
    }
    // Utilization time series of the no-coordination variant.
    let engine = recstep_engine(
        Config::default()
            .pbme(PbmeMode::Force)
            .threads(max_threads()),
    );
    let prog = engine.prepare(recstep::programs::SG).unwrap();
    let mut db = db_with_edges(&[("arc", &edges)]);
    let pool = engine.pool_handle();
    let (series, _) = sample_utilization(pool, Duration::from_millis(5), move || {
        prog.run(&mut db).unwrap();
    });
    let pts = downsample(&series, 10);
    let line: Vec<String> = pts
        .iter()
        .map(|(t, u)| format!("{:.2}s:{:.0}%", t.as_secs_f64(), u * 100.0))
        .collect();
    println!("  no-coord utilization series: {}", line.join(" "));
}
