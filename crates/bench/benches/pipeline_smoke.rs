//! Pipeline smoke benchmark: a small fig10-style transitive-closure
//! workload, run with the fused streaming delta pipeline on and off, with
//! the result recorded as `BENCH_pipeline.json` (tuples/sec, peak bytes,
//! speedup) so the hot path's performance trajectory is tracked run over
//! run. The workload combines a dense G(n,p) cluster (high `Rt`
//! duplication — where fusing wins) with a long path (≥ 20 fixpoint
//! iterations). Output path override: `RECSTEP_BENCH_OUT`.

use recstep_bench::*;

fn main() {
    // Scale divisor 50 (default) ⇒ a ~160-node cluster + 40-edge path.
    let cluster_n = (8000 / scale()).max(60);
    let edges = pipeline_workload(cluster_n, 12.0 / cluster_n as f64, 40, 42);
    header(
        "BENCH pipeline",
        &format!(
            "fused vs unfused streaming delta pipeline: TC on a {cluster_n}-node cluster \
             + 40-edge path ({} edges)",
            edges.len()
        ),
    );
    let mut result = run_pipeline_bench(
        &format!("tc-cluster{cluster_n}-path40"),
        &edges,
        max_threads(),
        3,
    );
    result.agg = Some(run_agg_bench(
        &format!("cc-cluster{cluster_n}-path40"),
        &edges,
        max_threads(),
        3,
    ));
    row(&cells(&[
        "mode",
        "time",
        "tuples/s",
        "peak MiB",
        "iterations",
    ]));
    row(&[
        "fused".into(),
        format!("{:.3}s", result.fused_secs),
        format!("{:.0}", result.fused_tuples_per_sec()),
        format!("{}", result.fused_peak_bytes >> 20),
        result.iterations.to_string(),
    ]);
    row(&[
        "unfused".into(),
        format!("{:.3}s", result.unfused_secs),
        format!("{:.0}", result.unfused_tuples_per_sec()),
        format!("{}", result.unfused_peak_bytes >> 20),
        result.iterations.to_string(),
    ]);
    println!(
        "  speedup {:.2}x; {} candidate rows dropped at source ({} bytes never materialized)",
        result.speedup(),
        result.rt_rows_skipped_at_source,
        result.rt_bytes_never_materialized
    );
    println!(
        "  shared index cache: {} misses on run 1, {} hits on run 2, {} resident bytes",
        result.cache_misses, result.cache_hits, result.cache_bytes
    );
    if let Some(a) = &result.agg {
        println!(
            "  streaming aggregation (CC): {:.2}x over --no-fused-agg; {} rows folded \
             at source, {} groups improved",
            a.speedup(),
            a.rows_folded_at_source,
            a.groups_improved
        );
    }
    let out = std::env::var("RECSTEP_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".into());
    let path = std::path::PathBuf::from(out);
    result.write_json(&path).expect("write BENCH_pipeline.json");
    println!("  wrote {}", path.display());
}
