//! Figure 15: program analyses across systems — Andersen's analysis on
//! datasets 1-7, CSDA and CSPA on the system-program stand-ins.
//!
//! Graspan~ is the worklist CFL engine; Bddbddb is shown only where its
//! encoding applies (small domains), matching the paper's selective bars.
//! BigDatalog~ (the generic configuration) sits out CSPA — the real system
//! does not support mutual recursion (Table 1).

use recstep::{Config, PbmeMode};
use recstep_baselines::setbased::SetEngine;
use recstep_baselines::worklist::{grammars, WorklistEngine};
use recstep_bench::*;
use recstep_graphgen::program_analysis as pa;

fn main() {
    let s = scale();
    header("Figure 15", "Program analyses across systems");

    println!("  (a) Andersen's analysis on datasets 1-7");
    row(&cells(&[
        "dataset",
        "RecStep",
        "BigDatalog~",
        "Souffle~",
        "Graspan~",
    ]));
    for (i, (name, vars)) in pa::paper_andersen_specs(s).into_iter().enumerate() {
        let input = pa::andersen(vars, 100 + i as u64);
        let rs = run_recstep(
            Config::default().pbme(PbmeMode::Off).threads(max_threads()),
            recstep::programs::ANDERSEN,
            &andersen_loads(&input),
            "pointsTo",
        );
        let bigd = run_recstep(
            Config::no_op().threads(max_threads()),
            recstep::programs::ANDERSEN,
            &andersen_loads(&input),
            "pointsTo",
        );
        let souffle = {
            let mut e = SetEngine::new(true);
            e.tuple_budget = Some(budget_tuples());
            e.load_edges("addressOf", &input.address_of);
            e.load_edges("assign", &input.assign);
            e.load_edges("load", &input.load);
            e.load_edges("store", &input.store);
            measure(|| {
                e.run_source(recstep::programs::ANDERSEN)
                    .map(|_| e.row_count("pointsTo"))
            })
        };
        let graspan = {
            let mut w = WorklistEngine::new(grammars::andersen());
            w.edge_budget = Some(budget_tuples());
            w.load("addressOf", &input.address_of).unwrap();
            w.load("assign", &input.assign).unwrap();
            w.load("load", &input.load).unwrap();
            w.load("store", &input.store).unwrap();
            measure(|| w.run().map(|_| w.edge_count("pointsTo")))
        };
        let counts: Vec<usize> = [&rs, &bigd, &souffle, &graspan]
            .iter()
            .filter_map(|o| o.rows())
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "{name}: {counts:?}"
        );
        row(&[name, rs.cell(), bigd.cell(), souffle.cell(), graspan.cell()]);
    }

    for analysis in ["CSDA", "CSPA"] {
        println!("  ({analysis}) on system-program stand-ins");
        row(&cells(&[
            "program",
            "RecStep",
            "BigDatalog~",
            "Souffle~",
            "Graspan~",
        ]));
        for spec in pa::paper_system_programs(s) {
            let (rs, bigd, souffle, graspan) = if analysis == "CSDA" {
                let input = pa::csda(spec.csda_chains, spec.csda_chain_len, 17);
                let rs = run_recstep(
                    Config::default().pbme(PbmeMode::Off).threads(max_threads()),
                    recstep::programs::CSDA,
                    &[("arc", &input.arc), ("nullEdge", &input.null_edge)],
                    "null",
                );
                let bigd = run_recstep(
                    Config::no_op().threads(max_threads()),
                    recstep::programs::CSDA,
                    &[("arc", &input.arc), ("nullEdge", &input.null_edge)],
                    "null",
                );
                let souffle = {
                    let mut e = SetEngine::new(true);
                    e.tuple_budget = Some(budget_tuples());
                    e.load_edges("arc", &input.arc);
                    e.load_edges("nullEdge", &input.null_edge);
                    measure(|| {
                        e.run_source(recstep::programs::CSDA)
                            .map(|_| e.row_count("null"))
                    })
                };
                let graspan = {
                    let mut w = WorklistEngine::new(grammars::csda());
                    w.edge_budget = Some(budget_tuples());
                    w.load("arc", &input.arc).unwrap();
                    w.load("nullEdge", &input.null_edge).unwrap();
                    measure(|| w.run().map(|_| w.edge_count("null")))
                };
                (rs, bigd, souffle, graspan)
            } else {
                let input = pa::cspa(spec.cspa_clusters, spec.cspa_cluster_size, 42);
                let rs = run_recstep(
                    Config::default().pbme(PbmeMode::Off).threads(max_threads()),
                    recstep::programs::CSPA,
                    &[
                        ("assign", &input.assign),
                        ("dereference", &input.dereference),
                    ],
                    "valueFlow",
                );
                let souffle = {
                    let mut e = SetEngine::new(true);
                    e.tuple_budget = Some(budget_tuples());
                    e.load_edges("assign", &input.assign);
                    e.load_edges("dereference", &input.dereference);
                    measure(|| {
                        e.run_source(recstep::programs::CSPA)
                            .map(|_| e.row_count("valueFlow"))
                    })
                };
                let graspan = {
                    let mut w = WorklistEngine::new(grammars::cspa());
                    w.edge_budget = Some(budget_tuples());
                    w.load("assign", &input.assign).unwrap();
                    w.load("dereference", &input.dereference).unwrap();
                    measure(|| w.run().map(|_| w.edge_count("valueFlow")))
                };
                // BigDatalog: no mutual recursion (paper Table 1).
                (rs, Outcome::Unsupported, souffle, graspan)
            };
            let counts: Vec<usize> = [&rs, &bigd, &souffle, &graspan]
                .iter()
                .filter_map(|o| o.rows())
                .collect();
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "{analysis} {}: {counts:?}",
                spec.name
            );
            row(&[
                spec.name.to_string(),
                rs.cell(),
                bigd.cell(),
                souffle.cell(),
                graspan.cell(),
            ]);
        }
    }
}

fn andersen_loads(input: &pa::AndersenInput) -> [(&'static str, &[(i64, i64)]); 4] {
    [
        ("addressOf", &input.address_of),
        ("assign", &input.assign),
        ("load", &input.load),
        ("store", &input.store),
    ]
}
