//! Appendix A: validating the DSD cost model — OPSD vs TPSD vs Dynamic
//! across β = |R|/|Rδ|, plus the calibrated α.

use recstep_bench::*;
use recstep_exec::setdiff::{
    calibrate_alpha, choose_algo, set_difference, DsdState, SetDiffAlgo, SetDiffStrategy,
};
use recstep_exec::ExecCtx;
use recstep_storage::{Relation, Schema};
use std::time::Instant;

fn synth(n: usize, offset: i64) -> Relation {
    let mut r = Relation::new(Schema::with_arity("t", 2));
    for i in 0..n as i64 {
        r.push_row(&[i + offset, (i * 7) % 100_000]);
    }
    r
}

fn main() {
    header(
        "Appendix A",
        "DSD cost model: OPSD vs TPSD vs Dynamic across beta",
    );
    let ctx = ExecCtx::with_threads(max_threads());
    let alpha = calibrate_alpha(&ctx, 2, 3);
    println!(
        "  calibrated alpha = {alpha:.2} (threshold 2a/(a-1) = {:.2})",
        2.0 * alpha / (alpha - 1.0)
    );
    let delta_n = (200_000u32 / scale().max(1)).max(2_000) as usize;
    row(&cells(&[
        "beta", "|R|", "OPSD", "TPSD", "Dynamic", "chosen",
    ]));
    for beta in [0.5f64, 1.0, 2.0, 4.0, 8.0, 32.0] {
        let full_n = (delta_n as f64 * beta) as usize;
        let delta = synth(delta_n, full_n as i64 / 2); // partial overlap
        let full = synth(full_n, 0);
        let time_for = |strategy: SetDiffStrategy| -> (f64, SetDiffAlgo) {
            let mut st = DsdState::new(alpha);
            // Prime mu like a previous TPSD iteration would.
            st.prev_mu = Some(2.0);
            let t0 = Instant::now();
            let (_, algo) = set_difference(&ctx, delta.view(), full.view(), strategy, &mut st);
            (t0.elapsed().as_secs_f64(), algo)
        };
        let (opsd, _) = time_for(SetDiffStrategy::AlwaysOpsd);
        let (tpsd, _) = time_for(SetDiffStrategy::AlwaysTpsd);
        let (dynamic, chosen) = time_for(SetDiffStrategy::Dynamic);
        row(&[
            format!("{beta}"),
            full_n.to_string(),
            format!("{:.4}s", opsd),
            format!("{:.4}s", tpsd),
            format!("{:.4}s", dynamic),
            format!("{chosen:?}"),
        ]);
        // The model's hard guarantees.
        assert_eq!(choose_algo(alpha, 0.5, None), SetDiffAlgo::Opsd);
        assert_eq!(choose_algo(alpha, 1e6, None), SetDiffAlgo::Tpsd);
    }
}
