//! Design-choice ablation (beyond the paper): per-iteration set difference
//! (the paper's architecture — dedup + ∆ = Rδ − R as queries) vs. two
//! incremental designs kept across iterations — the sequential
//! Soufflé-style hash set, and the engine's parallel persistent CCK-GSCHT
//! index (`index_reuse`, the production path). Run on a TC-like delta
//! stream.

use recstep_bench::*;
use recstep_exec::dedup::IncrementalSet;
use recstep_exec::index::PersistentIndex;
use recstep_exec::setdiff::{set_difference, DsdState, SetDiffStrategy};
use recstep_exec::ExecCtx;
use recstep_storage::{Relation, Schema};
use std::time::Instant;

fn main() {
    header(
        "Ablation",
        "per-iteration set difference vs incremental dedup index",
    );
    let ctx = ExecCtx::with_threads(max_threads());
    let iters = 40usize;
    let batch = (50_000u32 / scale().max(1)).max(1_000) as usize;
    // Delta stream with 50% overlap into the accumulated relation.
    let mk_batch = |i: usize| -> Relation {
        let mut r = Relation::new(Schema::with_arity("d", 2));
        let base = (i * batch / 2) as i64;
        for j in 0..batch as i64 {
            r.push_row(&[base + j, (base + j) % 977]);
        }
        r
    };

    // Paper architecture: R accumulates; ∆ = batch − R per iteration.
    let t0 = Instant::now();
    let mut full = Relation::new(Schema::with_arity("r", 2));
    let mut st = DsdState::default();
    let mut total_delta = 0usize;
    for i in 0..iters {
        let b = mk_batch(i);
        let (delta, _) = set_difference(
            &ctx,
            b.view(),
            full.view(),
            SetDiffStrategy::Dynamic,
            &mut st,
        );
        total_delta += delta.first().map_or(0, Vec::len);
        full.append_columns(delta);
    }
    let per_iter = t0.elapsed();

    // Incremental index: one persistent set, absorb each batch.
    let t0 = Instant::now();
    let mut inc = IncrementalSet::new();
    let mut inc_total = 0usize;
    for i in 0..iters {
        let b = mk_batch(i);
        let fresh = inc.absorb(b.view());
        inc_total += fresh.first().map_or(0, Vec::len);
    }
    let incremental = t0.elapsed();

    // Persistent CCK-GSCHT index: the engine's fused absorb + append.
    let t0 = Instant::now();
    let mut pfull = Relation::new(Schema::with_arity("r", 2));
    let mut pidx = PersistentIndex::build(&ctx, pfull.view(), vec![0, 1]);
    let mut pidx_total = 0usize;
    for i in 0..iters {
        let b = mk_batch(i);
        let out = pidx.absorb(&ctx, b.view(), pfull.view());
        pidx_total += out.fresh.first().map_or(0, Vec::len);
        pfull.append_columns(out.fresh);
        pidx.append(&ctx, pfull.view());
    }
    let persistent = t0.elapsed();

    assert_eq!(
        total_delta, inc_total,
        "both designs must find the same new tuples"
    );
    assert_eq!(
        total_delta, pidx_total,
        "the persistent index must find the same new tuples"
    );
    row(&cells(&["design", "time", "new tuples"]));
    row(&[
        "per-iteration DSD".into(),
        format!("{:.3}s", per_iter.as_secs_f64()),
        total_delta.to_string(),
    ]);
    row(&[
        "incremental set (seq)".into(),
        format!("{:.3}s", incremental.as_secs_f64()),
        inc_total.to_string(),
    ]);
    row(&[
        "persistent GSCHT".into(),
        format!("{:.3}s", persistent.as_secs_f64()),
        pidx_total.to_string(),
    ]);
}
