//! Table 4 (Appendix B): CPU efficiency ce = 1/(t·n) on representative
//! workloads across systems.

use recstep::{Config, PbmeMode};
use recstep_baselines::setbased::SetEngine;
use recstep_baselines::worklist::{grammars, WorklistEngine};
use recstep_bench::*;
use recstep_graphgen::{as_values, gnp::gnp, program_analysis as pa};

fn ce(out: &Outcome, threads: usize) -> String {
    match out.secs() {
        Some(t) if t > 0.0 => format!("{:.2e}", 1.0 / (t * threads as f64)),
        _ => "-".into(),
    }
}

fn main() {
    let s = scale();
    let threads = max_threads();
    header(
        "Table 4",
        "CPU efficiency (1/(t*n)) on representative workloads",
    );
    row(&cells(&[
        "workload",
        "RecStep",
        "BigDatalog~",
        "Souffle~",
        "Graspan~",
    ]));

    // TC on G20K-sim.
    {
        let n = (20_000u32 / s).max(64);
        let edges = as_values(&gnp(n, 0.001 * (s as f64).min(20.0), 3));
        let rs = run_recstep(
            Config::default().pbme(PbmeMode::Force).threads(threads),
            recstep::programs::TC,
            &[("arc", &edges)],
            "tc",
        );
        let bigd = run_recstep(
            Config::no_op().threads(threads),
            recstep::programs::TC,
            &[("arc", &edges)],
            "tc",
        );
        let souffle = {
            let mut e = SetEngine::new(true);
            e.tuple_budget = Some(budget_tuples());
            e.load_edges("arc", &edges);
            measure(|| {
                e.run_source(recstep::programs::TC)
                    .map(|_| e.row_count("tc"))
            })
        };
        row(&[
            "TC(G20K-sim)".to_string(),
            ce(&rs, threads),
            ce(&bigd, threads),
            ce(&souffle, threads),
            "-".into(),
        ]);
    }
    // AA on dataset 7.
    {
        let (_, vars) = pa::paper_andersen_specs(s).swap_remove(6);
        let input = pa::andersen(vars, 106);
        let rs = run_recstep(
            Config::default().pbme(PbmeMode::Off).threads(threads),
            recstep::programs::ANDERSEN,
            &[
                ("addressOf", &input.address_of),
                ("assign", &input.assign),
                ("load", &input.load),
                ("store", &input.store),
            ],
            "pointsTo",
        );
        let souffle = {
            let mut e = SetEngine::new(true);
            e.tuple_budget = Some(budget_tuples());
            e.load_edges("addressOf", &input.address_of);
            e.load_edges("assign", &input.assign);
            e.load_edges("load", &input.load);
            e.load_edges("store", &input.store);
            measure(|| {
                e.run_source(recstep::programs::ANDERSEN)
                    .map(|_| e.row_count("pointsTo"))
            })
        };
        row(&[
            "AA(dataset 7)".into(),
            ce(&rs, threads),
            "-".into(),
            ce(&souffle, threads),
            "-".into(),
        ]);
    }
    // CSDA + CSPA on linux-sim.
    {
        let spec = &pa::paper_system_programs(s)[0];
        let csda_in = pa::csda(spec.csda_chains, spec.csda_chain_len, 17);
        let rs = run_recstep(
            Config::default().pbme(PbmeMode::Off).threads(threads),
            recstep::programs::CSDA,
            &[("arc", &csda_in.arc), ("nullEdge", &csda_in.null_edge)],
            "null",
        );
        let graspan = {
            let mut w = WorklistEngine::new(grammars::csda());
            w.load("arc", &csda_in.arc).unwrap();
            w.load("nullEdge", &csda_in.null_edge).unwrap();
            measure(|| w.run().map(|_| w.edge_count("null")))
        };
        // Graspan is single-threaded in this reproduction.
        row(&[
            "CSDA(linux-sim)".into(),
            ce(&rs, threads),
            "-".into(),
            "-".into(),
            ce(&graspan, 1),
        ]);

        let cspa_in = pa::cspa(spec.cspa_clusters, spec.cspa_cluster_size, 42);
        let rs = run_recstep(
            Config::default().pbme(PbmeMode::Off).threads(threads),
            recstep::programs::CSPA,
            &[
                ("assign", &cspa_in.assign),
                ("dereference", &cspa_in.dereference),
            ],
            "valueFlow",
        );
        let graspan = {
            let mut w = WorklistEngine::new(grammars::cspa());
            w.load("assign", &cspa_in.assign).unwrap();
            w.load("dereference", &cspa_in.dereference).unwrap();
            measure(|| w.run().map(|_| w.edge_count("valueFlow")))
        };
        row(&[
            "CSPA(linux-sim)".into(),
            ce(&rs, threads),
            "-".into(),
            "-".into(),
            ce(&graspan, 1),
        ]);
    }
}
