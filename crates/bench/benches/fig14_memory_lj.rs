//! Figure 14: memory consumption of REACH / CC / SSSP on livejournal-sim.

use recstep::{Config, PbmeMode};
use recstep_baselines::setbased::SetEngine;
use recstep_bench::*;
use recstep_common::mem::{self, CountingAlloc};
use recstep_graphgen::{as_values, realworld, with_weights};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let s = scale();
    let spec = realworld::paper_realworld_specs(s.saturating_mul(60).max(60))[0];
    let raw = spec.generate(7);
    let src = source_vertices(spec.n, 1)[0];
    header(
        "Figure 14",
        &format!("Memory consumption on {} (n={}, m={})", spec.name, spec.n, spec.m),
    );
    row(&cells(&["workload", "system", "time", "peak alloc"]));
    for workload in ["REACH", "CC", "SSSP"] {
        // RecStep.
        {
            let mut e = recstep_engine(Config::default().pbme(PbmeMode::Off).threads(max_threads()));
            mem::reset_peak();
            let out = run_workload(&mut e, workload, &raw, src);
            row(&[workload.into(), "RecStep".into(), out.cell(), mem::fmt_bytes(mem::peak_bytes())]);
        }
        // BigDatalog-like.
        {
            let mut e = recstep_engine(Config::no_op().threads(max_threads()));
            mem::reset_peak();
            let out = run_workload(&mut e, workload, &raw, src);
            row(&[
                workload.into(),
                "BigDatalog~".into(),
                out.cell(),
                mem::fmt_bytes(mem::peak_bytes()),
            ]);
        }
        // Souffle-like (REACH only).
        if workload == "REACH" {
            let mut e = SetEngine::new(true);
            e.tuple_budget = Some(budget_tuples());
            e.load_edges("arc", &as_values(&raw));
            e.load("id", [vec![src]]);
            mem::reset_peak();
            let out = measure(|| e.run_source(recstep::programs::REACH).map(|_| e.row_count("reach")));
            row(&[workload.into(), "Souffle~".into(), out.cell(), mem::fmt_bytes(mem::peak_bytes())]);
        } else {
            row(&[workload.into(), "Souffle~".into(), "-".into(), "-".into()]);
        }
    }
}

fn run_workload(
    e: &mut recstep::RecStep,
    workload: &str,
    raw: &[(u32, u32)],
    src: i64,
) -> Outcome {
    match workload {
        "REACH" => {
            e.load_edges("arc", &as_values(raw)).unwrap();
            e.load_relation("id", 1, &[vec![src]]).unwrap();
            measure(|| e.run_source(recstep::programs::REACH).map(|_| e.row_count("reach")))
        }
        "CC" => {
            e.load_edges("arc", &as_values(raw)).unwrap();
            measure(|| e.run_source(recstep::programs::CC).map(|_| e.row_count("cc3")))
        }
        _ => {
            e.load_weighted_edges("arc", &with_weights(raw, 100, 9)).unwrap();
            e.load_relation("id", 1, &[vec![src]]).unwrap();
            measure(|| e.run_source(recstep::programs::SSSP).map(|_| e.row_count("sssp")))
        }
    }
}
