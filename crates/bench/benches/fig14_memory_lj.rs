//! Figure 14: memory consumption of REACH / CC / SSSP on livejournal-sim.

use recstep::{Config, PbmeMode};
use recstep_baselines::setbased::SetEngine;
use recstep_bench::*;
use recstep_common::mem::{self, CountingAlloc};
use recstep_graphgen::{as_values, realworld, with_weights};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let s = scale();
    let spec = realworld::paper_realworld_specs(s.saturating_mul(60).max(60))[0];
    let raw = spec.generate(7);
    let src = source_vertices(spec.n, 1)[0];
    header(
        "Figure 14",
        &format!(
            "Memory consumption on {} (n={}, m={})",
            spec.name, spec.n, spec.m
        ),
    );
    row(&cells(&["workload", "system", "time", "peak alloc"]));
    for workload in ["REACH", "CC", "SSSP"] {
        // RecStep. (run_workload resets the peak counter itself, after
        // engine construction and loading.)
        {
            let out = run_workload(
                Config::default().pbme(PbmeMode::Off).threads(max_threads()),
                workload,
                &raw,
                src,
            );
            row(&[
                workload.into(),
                "RecStep".into(),
                out.cell(),
                mem::fmt_bytes(mem::peak_bytes()),
            ]);
        }
        // BigDatalog-like.
        {
            let out = run_workload(Config::no_op().threads(max_threads()), workload, &raw, src);
            row(&[
                workload.into(),
                "BigDatalog~".into(),
                out.cell(),
                mem::fmt_bytes(mem::peak_bytes()),
            ]);
        }
        // Souffle-like (REACH only).
        if workload == "REACH" {
            let mut e = SetEngine::new(true);
            e.tuple_budget = Some(budget_tuples());
            e.load_edges("arc", &as_values(&raw));
            e.load("id", [vec![src]]);
            mem::reset_peak();
            let out = measure(|| {
                e.run_source(recstep::programs::REACH)
                    .map(|_| e.row_count("reach"))
            });
            row(&[
                workload.into(),
                "Souffle~".into(),
                out.cell(),
                mem::fmt_bytes(mem::peak_bytes()),
            ]);
        } else {
            row(&[workload.into(), "Souffle~".into(), "-".into(), "-".into()]);
        }
    }
}

fn run_workload(cfg: Config, workload: &str, raw: &[(u32, u32)], src: i64) -> Outcome {
    // Build engine + database *before* resetting the peak counter so the
    // reported "peak alloc" covers evaluation only, matching fig03/fig06.
    let (prog, mut db, rel) = match workload {
        "REACH" => {
            let prog = prepared(cfg, recstep::programs::REACH);
            let mut db = db_with_edges(&[("arc", &as_values(raw))]);
            db.load_relation("id", 1, &[vec![src]]).unwrap();
            (prog, db, "reach")
        }
        "CC" => (
            prepared(cfg, recstep::programs::CC),
            db_with_edges(&[("arc", &as_values(raw))]),
            "cc3",
        ),
        _ => {
            let prog = prepared(cfg, recstep::programs::SSSP);
            let mut db = recstep::Database::new().unwrap();
            db.load_weighted_edges("arc", &with_weights(raw, 100, 9))
                .unwrap();
            db.load_relation("id", 1, &[vec![src]]).unwrap();
            (prog, db, "sssp")
        }
    };
    mem::reset_peak();
    measure(|| prog.run(&mut db).map(|_| db.row_count(rel)))
}
