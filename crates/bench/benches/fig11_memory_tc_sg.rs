//! Figure 11: memory usage of TC and SG on G10K-sim across systems.

use recstep::{Config, PbmeMode};
use recstep_baselines::setbased::SetEngine;
use recstep_bench::*;
use recstep_common::mem::{self, CountingAlloc};
use recstep_graphgen::{as_values, gnp::gnp};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let s = scale();
    let n = (10_000u32 / s).max(64);
    let p = 0.001 * (s as f64).min(20.0);
    header(
        "Figure 11",
        &format!("Memory usage of TC and SG on G10K-sim (n={n})"),
    );
    row(&cells(&["workload", "system", "time", "peak alloc"]));
    for (program, rel, label) in [
        (recstep::programs::TC, "tc", "TC"),
        (recstep::programs::SG, "sg", "SG"),
    ] {
        let edges = as_values(&gnp(n, p, 3));
        // RecStep (PBME).
        let prog = prepared(
            Config::default()
                .pbme(PbmeMode::Force)
                .threads(max_threads()),
            program,
        );
        let mut db = db_with_edges(&[("arc", &edges)]);
        mem::reset_peak();
        let out = measure(|| prog.run(&mut db).map(|_| db.row_count(rel)));
        row(&[
            label.into(),
            "RecStep".into(),
            out.cell(),
            mem::fmt_bytes(mem::peak_bytes()),
        ]);
        drop((prog, db));
        // BigDatalog-like (generic tuple engine).
        let prog = prepared(Config::no_op().threads(max_threads()), program);
        let mut db = db_with_edges(&[("arc", &edges)]);
        mem::reset_peak();
        let out = measure(|| prog.run(&mut db).map(|_| db.row_count(rel)));
        row(&[
            label.into(),
            "BigDatalog~".into(),
            out.cell(),
            mem::fmt_bytes(mem::peak_bytes()),
        ]);
        drop((prog, db));
        // Souffle-like.
        let mut e = SetEngine::new(true);
        e.tuple_budget = Some(budget_tuples());
        e.load_edges("arc", &edges);
        mem::reset_peak();
        let out = measure(|| e.run_source(program).map(|_| e.row_count(rel)));
        row(&[
            label.into(),
            "Souffle~".into(),
            out.cell(),
            mem::fmt_bytes(mem::peak_bytes()),
        ]);
    }
}
