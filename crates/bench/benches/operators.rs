//! Micro-benchmarks of the bottleneck operators (§5: set difference and
//! deduplication) plus the hash join, as plain timed runs (median of a
//! few repetitions) in the same report format as the figure targets.

use recstep_bench::{cells, header, row};
use recstep_common::lang::Expr;
use recstep_exec::dedup::{deduplicate, DedupImpl};
use recstep_exec::join::{hash_join, JoinSpec};
use recstep_exec::setdiff::{set_difference, DsdState, SetDiffStrategy};
use recstep_exec::ExecCtx;
use recstep_storage::{Relation, Schema};
use std::time::Instant;

fn mk(n: usize, stride: i64) -> Relation {
    let mut r = Relation::new(Schema::with_arity("t", 2));
    for i in 0..n as i64 {
        r.push_row(&[(i * stride) % 65_536, i % 9_973]);
    }
    r
}

/// Median wall seconds of `reps` runs of `f`.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let ctx = ExecCtx::with_threads(4);
    header(
        "Operators",
        "dedup / set difference / hash join micro-benchmarks",
    );

    row(&cells(&["operator", "variant", "median"]));
    let rel = mk(100_000, 3);
    for imp in [DedupImpl::Fast, DedupImpl::Generic, DedupImpl::Sort] {
        let secs = time_median(5, || {
            deduplicate(&ctx, rel.view(), imp, rel.len());
        });
        row(&["dedup".into(), format!("{imp:?}"), format!("{secs:.4}s")]);
    }

    let delta = mk(20_000, 7);
    let full = mk(200_000, 1);
    for strat in [
        SetDiffStrategy::AlwaysOpsd,
        SetDiffStrategy::AlwaysTpsd,
        SetDiffStrategy::Dynamic,
    ] {
        let secs = time_median(5, || {
            let mut st = DsdState::default();
            set_difference(&ctx, delta.view(), full.view(), strat, &mut st);
        });
        row(&[
            "setdiff".into(),
            format!("{strat:?}"),
            format!("{secs:.4}s"),
        ]);
    }

    let left = mk(50_000, 3);
    let right = mk(50_000, 5);
    let output = [Expr::Col(1), Expr::Col(3)];
    for build_left in [true, false] {
        let spec = JoinSpec {
            left_keys: &[0],
            right_keys: &[0],
            build_left,
            output: &output,
            residual: &[],
        };
        let secs = time_median(5, || {
            hash_join(&ctx, left.view(), right.view(), &spec);
        });
        row(&[
            "hash_join".into(),
            format!("build_left={build_left}"),
            format!("{secs:.4}s"),
        ]);
    }
}
