//! Criterion micro-benchmarks of the bottleneck operators (§5: set
//! difference and deduplication) plus the hash join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recstep_common::lang::Expr;
use recstep_exec::dedup::{deduplicate, DedupImpl};
use recstep_exec::join::{hash_join, JoinSpec};
use recstep_exec::setdiff::{set_difference, DsdState, SetDiffStrategy};
use recstep_exec::ExecCtx;
use recstep_storage::{Relation, Schema};

fn mk(n: usize, stride: i64) -> Relation {
    let mut r = Relation::new(Schema::with_arity("t", 2));
    for i in 0..n as i64 {
        r.push_row(&[(i * stride) % 65_536, i % 9_973]);
    }
    r
}

fn bench_dedup(c: &mut Criterion) {
    let ctx = ExecCtx::with_threads(4);
    let rel = mk(100_000, 3);
    let mut g = c.benchmark_group("dedup");
    g.sample_size(10);
    for imp in [DedupImpl::Fast, DedupImpl::Generic, DedupImpl::Sort] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{imp:?}")), &imp, |b, &imp| {
            b.iter(|| deduplicate(&ctx, rel.view(), imp, rel.len()));
        });
    }
    g.finish();
}

fn bench_setdiff(c: &mut Criterion) {
    let ctx = ExecCtx::with_threads(4);
    let delta = mk(20_000, 7);
    let full = mk(200_000, 1);
    let mut g = c.benchmark_group("setdiff");
    g.sample_size(10);
    for strat in
        [SetDiffStrategy::AlwaysOpsd, SetDiffStrategy::AlwaysTpsd, SetDiffStrategy::Dynamic]
    {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{strat:?}")), &strat, |b, &s| {
            b.iter(|| {
                let mut st = DsdState::default();
                set_difference(&ctx, delta.view(), full.view(), s, &mut st)
            });
        });
    }
    g.finish();
}

fn bench_join(c: &mut Criterion) {
    let ctx = ExecCtx::with_threads(4);
    let left = mk(50_000, 3);
    let right = mk(50_000, 5);
    let output = [Expr::Col(1), Expr::Col(3)];
    let mut g = c.benchmark_group("hash_join");
    g.sample_size(10);
    for build_left in [true, false] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("build_left={build_left}")),
            &build_left,
            |b, &bl| {
                let spec = JoinSpec {
                    left_keys: &[0],
                    right_keys: &[0],
                    build_left: bl,
                    output: &output,
                    residual: &[],
                };
                b.iter(|| hash_join(&ctx, left.view(), right.view(), &spec));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_dedup, bench_setdiff, bench_join);
criterion_main!(benches);
