//! Serve smoke benchmark: stand up the query service in-process, drive a
//! warm request mix through `/query`, and record the service-side latency
//! percentiles and cache behaviour as the `"serve"` block of
//! `BENCH_pipeline.json` — so the service layer's performance trajectory
//! is tracked alongside the engine's. Output path override:
//! `RECSTEP_BENCH_OUT`.

use recstep::{Config, Database, Durability, ServeConfig};
use recstep_bench::*;
use recstep_serve::client::{get, post};
use recstep_serve::{json::Json, Server};

const NEG: &str = "p(x) :- node(x), !blocked(x).";
const TC: &str = "tc(x, y) :- arc(x, y).\\ntc(x, y) :- tc(x, z), arc(z, y).";

fn main() {
    // A small mixed database: a negation workload that exercises the
    // shared frozen-index cache, and a TC chain for a recursive fixpoint.
    let n = (6400 / scale()).max(64) as i64;
    let mut db = Database::new().expect("database");
    let nodes: Vec<Vec<i64>> = (1..=n).map(|v| vec![v]).collect();
    let blocked: Vec<Vec<i64>> = (1..=n).filter(|v| v % 2 == 1).map(|v| vec![v]).collect();
    let arcs: Vec<(i64, i64)> = (1..n.min(200)).map(|v| (v, v + 1)).collect();
    db.load_relation("node", 1, &nodes).expect("node");
    db.load_relation("blocked", 1, &blocked).expect("blocked");
    db.load_edges("arc", &arcs).expect("arc");

    header(
        "BENCH serve",
        &format!(
            "query service smoke: warm /query mix over {n} nodes + {}-edge chain",
            arcs.len()
        ),
    );

    // The service runs durable: WAL per /facts commit, snapshot + log
    // compaction every 2 commits, and a restart at the end measures
    // recovery (the durability block below comes from the recovered
    // process).
    let data_dir = std::env::temp_dir().join(format!("recstep_serve_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let serve_cfg = || {
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .data_dir(data_dir.to_str().expect("utf-8 temp dir"))
            .durability(Durability::Commit)
            .snapshot_every_n_commits(2)
    };
    let server = Server::start(Config::default().threads(max_threads()), serve_cfg(), db)
        .expect("server starts");
    let addr = server.addr();

    // One cold request per program (compile + frozen-index build), then a
    // warm mix that should be all prepared-cache hits.
    let warm_rounds = 24usize;
    for prog in [NEG, TC] {
        let (status, body) =
            post(addr, "/query", &format!("{{\"program\":\"{prog}\"}}")).expect("cold query");
        assert_eq!(status, 200, "{body}");
    }
    for _ in 0..warm_rounds {
        for prog in [NEG, TC] {
            let (status, body) =
                post(addr, "/query", &format!("{{\"program\":\"{prog}\"}}")).expect("warm query");
            assert_eq!(status, 200, "{body}");
        }
    }

    let (status, stats_body) = get(addr, "/stats").expect("/stats");
    assert_eq!(status, 200, "{stats_body}");
    let stats = Json::parse(&stats_body).expect("stats parses");
    let pick = |path: &[&str]| -> i64 {
        let mut cur = &stats;
        for key in path {
            cur = cur
                .get(key)
                .unwrap_or_else(|| panic!("no {key} in {stats_body}"));
        }
        cur.as_int()
            .unwrap_or_else(|| panic!("{path:?} not an int"))
    };

    let queries = pick(&["queries"]);
    let compiles = pick(&["compiles"]);
    let prepared_hits = pick(&["prepared_hits"]);
    let shed_count = pick(&["shed_count"]);
    let cache_hits = pick(&["lifetime", "cache_hits"]);
    let p50_us = pick(&["latency", "p50_us"]);
    let p95_us = pick(&["latency", "p95_us"]);
    assert_eq!(compiles, 2, "two programs, each compiled exactly once");
    assert_eq!(
        prepared_hits,
        queries - 2,
        "every warm request is a prepared-cache hit"
    );
    assert_eq!(shed_count, 0, "a sequential smoke run must not shed");

    // Durability leg: three WAL-logged commits (one survives the last
    // snapshot compaction), then a hard restart from the data dir — the
    // recovered server must replay the tail and answer over the new facts.
    for (f, t) in [(500, 501), (501, 502), (502, 503)] {
        let (status, body) = post(
            addr,
            "/facts",
            &format!("{{\"insert\":{{\"arc\":[[{f},{t}]]}}}}"),
        )
        .expect("facts commit");
        assert_eq!(status, 200, "{body}");
    }
    server.shutdown();
    let server = Server::start(
        Config::default().threads(max_threads()),
        serve_cfg(),
        Database::new().expect("database"),
    )
    .expect("server recovers");
    let addr = server.addr();
    let (status, body) =
        post(addr, "/query", &format!("{{\"program\":\"{TC}\"}}")).expect("recovered query");
    assert_eq!(status, 200, "{body}");
    let (status, stats_body) = get(addr, "/stats").expect("/stats after recovery");
    assert_eq!(status, 200, "{stats_body}");
    let stats = Json::parse(&stats_body).expect("recovered stats parse");
    let pick_dur = |key: &str| -> i64 {
        stats
            .get("durability")
            .and_then(|d| d.get(key))
            .and_then(Json::as_int)
            .unwrap_or_else(|| panic!("no durability.{key} in {stats_body}"))
    };
    let wal_records = pick_dur("wal_records");
    let wal_bytes = pick_dur("wal_bytes");
    let snapshots = pick_dur("snapshots");
    let recovered_records = pick_dur("recovered_records");
    assert_eq!(
        stats.get("data_version").and_then(Json::as_int),
        Some(3),
        "recovery reconstructs data_version exactly: {stats_body}"
    );
    assert_eq!(recovered_records, 1, "one commit past the last snapshot");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);

    row(&cells(&[
        "queries",
        "p50 us",
        "p95 us",
        "hits",
        "shed",
        "recovered",
    ]));
    row(&[
        queries.to_string(),
        p50_us.to_string(),
        p95_us.to_string(),
        cache_hits.to_string(),
        shed_count.to_string(),
        recovered_records.to_string(),
    ]);

    // Splice the `"serve"` block into BENCH_pipeline.json (created by the
    // pipeline_smoke bench; a minimal document is written if absent so the
    // benches can run in either order).
    // Benches run with the package dir as cwd; the pipeline record lives
    // at the workspace root.
    let out = std::env::var("RECSTEP_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json").into()
    });
    let path = std::path::PathBuf::from(out);
    let block = format!(
        "{{\"queries\": {queries}, \"compiles\": {compiles}, \
         \"prepared_hits\": {prepared_hits}, \"p50_us\": {p50_us}, \"p95_us\": {p95_us}, \
         \"cache_hits\": {cache_hits}, \"shed_count\": {shed_count}, \
         \"durability\": {{\"wal_records\": {wal_records}, \"wal_bytes\": {wal_bytes}, \
         \"snapshots\": {snapshots}, \"recovered_records\": {recovered_records}}}}}"
    );
    splice_json_block(&path, "serve", &block);
    println!("  spliced \"serve\" block into {}", path.display());
}
