//! Dictionary encoding of symbolic domains.
//!
//! Datalog engines (RecStep included — paper §5.2 footnote 2) map the active
//! domain of input data onto dense integers before evaluation so that tuples
//! become fixed-width integer rows. [`Dictionary`] provides that mapping plus
//! the reverse lookup needed to render results back symbolically.

use crate::hash::FxHashMap;
use crate::Value;

/// Interns strings to dense [`Value`] ids starting at 0.
#[derive(Default, Debug, Clone)]
pub struct Dictionary {
    map: FxHashMap<String, Value>,
    rev: Vec<String>,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its dense id (allocating a fresh one on first
    /// sight).
    pub fn intern(&mut self, s: &str) -> Value {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = self.rev.len() as Value;
        self.map.insert(s.to_owned(), id);
        self.rev.push(s.to_owned());
        id
    }

    /// Look up an already-interned string.
    pub fn get(&self, s: &str) -> Option<Value> {
        self.map.get(s).copied()
    }

    /// Reverse lookup of an id.
    pub fn resolve(&self, id: Value) -> Option<&str> {
        usize::try_from(id)
            .ok()
            .and_then(|i| self.rev.get(i))
            .map(String::as_str)
    }

    /// Number of interned symbols (= size of the active domain).
    pub fn len(&self) -> usize {
        self.rev.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.rev.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut d = Dictionary::new();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(d.intern("alpha"), a);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut d = Dictionary::new();
        let id = d.intern("x42");
        assert_eq!(d.resolve(id), Some("x42"));
        assert_eq!(d.get("x42"), Some(id));
        assert_eq!(d.resolve(99), None);
        assert_eq!(d.resolve(-1), None);
    }
}
