//! Failpoints: deterministic fault injection for crash-safety tests.
//!
//! A failpoint is a named site in production code (`fail_point!("wal::\
//! after_append")`) that normally does nothing — the fast path is a single
//! relaxed atomic load — but can be armed to inject a failure exactly
//! there: an I/O error, a panic, a process abort, or (for write paths that
//! opt in via [`eval`]) a torn short write. Tests arm points
//! programmatically with [`cfg()`]; operators and the CI crash harness arm
//! them from the environment:
//!
//! ```text
//! RECSTEP_FAILPOINTS="wal::after_append=return_io_err;snapshot::before_rename=abort"
//! ```
//!
//! Action grammar: `[N*]return_io_err | panic | abort | short_write | off`.
//! An `N*` prefix skips the first `N` hits, then fires on every hit after
//! — "crash at the 3rd commit" is `2*abort`. Failpoints are process-global;
//! tests that arm them must serialize with each other and [`teardown`]
//! when done.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Once, OnceLock};

use parking_lot::RwLock;

use crate::{Error, Result};

/// What an armed failpoint does when hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Return an injected `Error::Io` from the enclosing function.
    ReturnIoErr,
    /// Panic (exercises `catch_unwind` isolation).
    Panic,
    /// Abort the process — a real crash, for out-of-process harnesses.
    Abort,
    /// Write only a prefix of the bytes, then fail (simulates a torn
    /// write). Only write paths that call [`eval`] honor this; at a plain
    /// `fail_point!` it degrades to [`FailAction::ReturnIoErr`].
    ShortWrite,
}

struct Point {
    action: FailAction,
    /// Hits to let through before firing.
    skip: AtomicU64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn registry() -> &'static RwLock<HashMap<String, Point>> {
    static REGISTRY: OnceLock<RwLock<HashMap<String, Point>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Fast-path check used by the `fail_point!` macro: false (one relaxed
/// load) unless at least one failpoint is armed. The first call parses
/// `RECSTEP_FAILPOINTS` from the environment.
#[inline]
pub fn enabled() -> bool {
    ENV_INIT.call_once(|| {
        if let Ok(spec) = std::env::var("RECSTEP_FAILPOINTS") {
            if let Err(e) = cfg_all(&spec) {
                eprintln!("RECSTEP_FAILPOINTS: {e}");
            }
        }
    });
    ENABLED.load(Ordering::Relaxed)
}

/// Arm failpoints from a `name=action` list separated by `;` (or `,`).
pub fn cfg_all(spec: &str) -> std::result::Result<(), String> {
    for part in spec.split([';', ',']) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, action) = part
            .split_once('=')
            .ok_or_else(|| format!("failpoint spec '{part}' is not name=action"))?;
        cfg(name.trim(), action.trim())?;
    }
    Ok(())
}

/// Arm (or disarm, with `off`) one failpoint. See the module docs for the
/// action grammar.
pub fn cfg(name: &str, action: &str) -> std::result::Result<(), String> {
    let (skip, action_str) = match action.split_once('*') {
        Some((n, rest)) => (
            n.parse::<u64>()
                .map_err(|_| format!("bad skip count in '{action}'"))?,
            rest,
        ),
        None => (0, action),
    };
    let parsed = match action_str {
        "return_io_err" | "return" => Some(FailAction::ReturnIoErr),
        "panic" => Some(FailAction::Panic),
        "abort" => Some(FailAction::Abort),
        "short_write" => Some(FailAction::ShortWrite),
        "off" => None,
        other => return Err(format!("unknown failpoint action '{other}'")),
    };
    let mut map = registry().write();
    match parsed {
        Some(a) => {
            map.insert(
                name.to_string(),
                Point {
                    action: a,
                    skip: AtomicU64::new(skip),
                },
            );
        }
        None => {
            map.remove(name);
        }
    }
    ENABLED.store(!map.is_empty(), Ordering::Relaxed);
    Ok(())
}

/// Disarm one failpoint.
pub fn remove(name: &str) {
    let mut map = registry().write();
    map.remove(name);
    ENABLED.store(!map.is_empty(), Ordering::Relaxed);
}

/// Disarm every failpoint (test teardown).
pub fn teardown() {
    let mut map = registry().write();
    map.clear();
    ENABLED.store(false, Ordering::Relaxed);
}

/// Evaluate a failpoint by name: `None` when disarmed or still within its
/// skip window, `Some(action)` when it fires. Write paths use this to
/// implement [`FailAction::ShortWrite`] themselves; everything else goes
/// through the `fail_point!` macro.
pub fn eval(name: &str) -> Option<FailAction> {
    if !enabled() {
        return None;
    }
    let map = registry().read();
    let point = map.get(name)?;
    // fetch_update: pass while the skip budget lasts, fire afterwards.
    let passed = point
        .skip
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| s.checked_sub(1))
        .is_ok();
    if passed {
        None
    } else {
        Some(point.action)
    }
}

/// Macro body: act on a fired failpoint. `ShortWrite` at a generic site
/// degrades to an injected I/O error.
pub fn act(name: &str) -> Result<()> {
    match eval(name) {
        None => Ok(()),
        Some(FailAction::Panic) => panic!("failpoint {name}: injected panic"),
        Some(FailAction::Abort) => {
            eprintln!("failpoint {name}: aborting process");
            std::process::abort()
        }
        Some(FailAction::ReturnIoErr | FailAction::ShortWrite) => Err(Error::Io(
            std::io::Error::other(format!("failpoint {name}: injected i/o error")),
        )),
    }
}

/// Declare a failpoint. Expands to nothing observable when no failpoint
/// is armed (one relaxed atomic load); an armed point may return an
/// injected `Err` from the enclosing function (which must return
/// [`crate::Result`]), panic, or abort the process.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        if $crate::fail::enabled() {
            $crate::fail::act($name)?;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// Failpoints are process-global; unit tests here serialize on this.
    static LOCK: Mutex<()> = Mutex::new(());

    fn guarded_site() -> Result<u32> {
        fail_point!("test::site");
        Ok(7)
    }

    #[test]
    fn disarmed_is_a_noop() {
        let _g = LOCK.lock();
        teardown();
        assert_eq!(guarded_site().unwrap(), 7);
        assert!(eval("test::site").is_none());
    }

    #[test]
    fn armed_point_injects_and_teardown_restores() {
        let _g = LOCK.lock();
        teardown();
        cfg("test::site", "return_io_err").unwrap();
        let err = guarded_site().unwrap_err();
        assert!(err.to_string().contains("failpoint test::site"), "{err}");
        remove("test::site");
        assert_eq!(guarded_site().unwrap(), 7);
        teardown();
    }

    #[test]
    fn skip_prefix_delays_firing() {
        let _g = LOCK.lock();
        teardown();
        cfg("test::site", "2*return_io_err").unwrap();
        assert!(guarded_site().is_ok());
        assert!(guarded_site().is_ok());
        assert!(guarded_site().is_err(), "fires on the 3rd hit");
        assert!(guarded_site().is_err(), "and keeps firing");
        teardown();
    }

    #[test]
    fn spec_parsing_accepts_lists_and_rejects_junk() {
        let _g = LOCK.lock();
        teardown();
        cfg_all("a=panic; b=1*short_write, c=off").unwrap();
        assert!(registry().read().contains_key("a"));
        assert!(registry().read().contains_key("b"));
        assert!(!registry().read().contains_key("c"));
        assert!(cfg("x", "explode").is_err());
        assert!(cfg("x", "y*panic").is_err());
        assert!(cfg_all("no-equals-sign").is_err());
        teardown();
    }

    #[test]
    fn off_disarms_via_cfg() {
        let _g = LOCK.lock();
        teardown();
        cfg("test::gone", "panic").unwrap();
        cfg("test::gone", "off").unwrap();
        assert!(eval("test::gone").is_none());
        teardown();
    }
}
