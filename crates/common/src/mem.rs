//! Memory accounting.
//!
//! The paper reports memory as a percentage of a 160 GB server sampled over
//! time (Figures 3, 6, 11, 14). We reproduce the instrument with two layers:
//!
//! * [`CountingAlloc`] — a `GlobalAlloc` wrapper around the system allocator
//!   that tracks live and peak bytes. Benchmark binaries and examples install
//!   it with `#[global_allocator]`; library code only ever *reads* the
//!   counters, so tests that don't install it simply see zeros.
//! * [`MemSampler`] — a background thread recording `(elapsed, live_bytes)`
//!   pairs at a fixed cadence, yielding the figures' time series.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Byte-counting wrapper around the system allocator.
///
/// Install in a binary with:
/// ```ignore
/// #[global_allocator]
/// static ALLOC: recstep_common::mem::CountingAlloc = recstep_common::mem::CountingAlloc;
/// ```
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn on_alloc(size: usize) {
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    #[inline]
    fn on_dealloc(size: usize) {
        LIVE.fetch_sub(size, Ordering::Relaxed);
    }
}

// SAFETY: defers to the system allocator for every operation; the counters
// are side tables that never influence the returned pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            Self::on_dealloc(layout.size());
            Self::on_alloc(new_size);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }
}

/// Live heap bytes (0 unless [`CountingAlloc`] is installed).
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Peak heap bytes since process start or the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak-bytes watermark to the current live level.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// One observation of the sampler.
#[derive(Clone, Copy, Debug)]
pub struct MemSample {
    /// Time since the sampler started.
    pub elapsed: Duration,
    /// Live heap bytes at that instant.
    pub live_bytes: usize,
}

/// Background sampler producing a memory-over-time series.
pub struct MemSampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<Vec<MemSample>>>,
}

impl MemSampler {
    /// Start sampling every `interval`.
    pub fn start(interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("recstep-mem-sampler".into())
            .spawn(move || {
                let t0 = Instant::now();
                let mut out = Vec::new();
                while !stop2.load(Ordering::Relaxed) {
                    out.push(MemSample {
                        elapsed: t0.elapsed(),
                        live_bytes: live_bytes(),
                    });
                    std::thread::sleep(interval);
                }
                out.push(MemSample {
                    elapsed: t0.elapsed(),
                    live_bytes: live_bytes(),
                });
                out
            })
            .expect("failed to spawn sampler");
        MemSampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop sampling and return the collected series.
    pub fn finish(mut self) -> Vec<MemSample> {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .map(|h| h.join().unwrap_or_default())
            .unwrap_or_default()
    }
}

impl Drop for MemSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Pretty-print a byte count (e.g. `1.50 MiB`) for harness output.
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_read_without_allocator_installed() {
        // The test binary doesn't install CountingAlloc, so counters are
        // whatever the default (0-based) state is; they must not panic.
        let _ = live_bytes();
        let _ = peak_bytes();
        reset_peak();
    }

    #[test]
    fn sampler_produces_monotone_timestamps() {
        let s = MemSampler::start(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(10));
        let series = s.finish();
        assert!(series.len() >= 2);
        for w in series.windows(2) {
            assert!(w[1].elapsed >= w[0].elapsed);
        }
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MiB");
    }
}
