//! Scalar expressions and predicates over flattened rule-body rows.
//!
//! During plan execution a rule body is flattened into one wide row: the
//! columns of every (joined) atom, in body order. Projections to the head
//! and residual predicates (`x != y`, `d < 10`, `MIN(d1 + d2)`'s argument…)
//! are expressions over that wide row.

use crate::Value;

/// A scalar expression over a flattened body row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Column reference (index into the flattened row).
    Col(usize),
    /// Integer literal.
    Const(Value),
    /// Wrapping addition.
    Add(Box<Expr>, Box<Expr>),
    /// Wrapping subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Wrapping multiplication.
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Evaluate against a flattened row.
    #[inline]
    pub fn eval(&self, row: &[Value]) -> Value {
        match self {
            Expr::Col(i) => row[*i],
            Expr::Const(c) => *c,
            Expr::Add(a, b) => a.eval(row).wrapping_add(b.eval(row)),
            Expr::Sub(a, b) => a.eval(row).wrapping_sub(b.eval(row)),
            Expr::Mul(a, b) => a.eval(row).wrapping_mul(b.eval(row)),
        }
    }

    /// Largest column index referenced, if any (used for arity checks).
    pub fn max_col(&self) -> Option<usize> {
        match self {
            Expr::Col(i) => Some(*i),
            Expr::Const(_) => None,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                match (a.max_col(), b.max_col()) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
        }
    }

    /// Convenience constructor: `a + b`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `a - b`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `a * b`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }
}

/// Comparison operator of a predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the comparison.
    #[inline]
    pub fn apply(self, l: Value, r: Value) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        }
    }

    /// Surface syntax of the operator (for SQL rendering).
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A residual predicate `lhs op rhs` over a flattened row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Predicate {
    /// Left operand.
    pub lhs: Expr,
    /// Comparison.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Expr,
}

impl Predicate {
    /// Evaluate against a flattened row.
    #[inline]
    pub fn eval(&self, row: &[Value]) -> bool {
        self.op.apply(self.lhs.eval(row), self.rhs.eval(row))
    }
}

/// Evaluate a conjunction of predicates.
#[inline]
pub fn eval_all(preds: &[Predicate], row: &[Value]) -> bool {
    preds.iter().all(|p| p.eval(row))
}

/// Aggregation operators supported in rule heads (paper §3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum.
    Sum,
    /// Row count (its argument expression is still evaluated for arity
    /// checking but its value is ignored).
    Count,
    /// Integer average (floor of sum/count), matching the engine's all-`i64`
    /// value domain.
    Avg,
}

impl AggFunc {
    /// Surface syntax (for SQL rendering).
    pub fn sql(self) -> &'static str {
        match self {
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Avg => "AVG",
        }
    }

    /// Parse a (case-insensitive) aggregate name.
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "SUM" => Some(AggFunc::Sum),
            "COUNT" => Some(AggFunc::Count),
            "AVG" => Some(AggFunc::Avg),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_arithmetic() {
        let row = [10, 20, 30];
        let e = Expr::add(Expr::Col(0), Expr::mul(Expr::Col(1), Expr::Const(2)));
        assert_eq!(e.eval(&row), 50);
        assert_eq!(Expr::sub(Expr::Col(2), Expr::Col(0)).eval(&row), 20);
    }

    #[test]
    fn eval_wraps_instead_of_panicking() {
        let row = [Value::MAX];
        let e = Expr::add(Expr::Col(0), Expr::Const(1));
        assert_eq!(e.eval(&row), Value::MIN);
    }

    #[test]
    fn max_col_tracks_references() {
        let e = Expr::add(Expr::Col(3), Expr::Const(1));
        assert_eq!(e.max_col(), Some(3));
        assert_eq!(Expr::Const(7).max_col(), None);
        let e = Expr::mul(Expr::Const(2), Expr::sub(Expr::Col(1), Expr::Col(5)));
        assert_eq!(e.max_col(), Some(5));
    }

    #[test]
    fn cmp_ops() {
        assert!(CmpOp::Eq.apply(1, 1));
        assert!(CmpOp::Ne.apply(1, 2));
        assert!(CmpOp::Lt.apply(1, 2));
        assert!(CmpOp::Le.apply(2, 2));
        assert!(CmpOp::Gt.apply(3, 2));
        assert!(CmpOp::Ge.apply(2, 2));
        assert!(!CmpOp::Lt.apply(2, 2));
    }

    #[test]
    fn predicates_conjunction() {
        let row = [5, 9];
        let p1 = Predicate {
            lhs: Expr::Col(0),
            op: CmpOp::Ne,
            rhs: Expr::Col(1),
        };
        let p2 = Predicate {
            lhs: Expr::Col(1),
            op: CmpOp::Ge,
            rhs: Expr::Const(9),
        };
        assert!(eval_all(&[p1.clone(), p2.clone()], &row));
        let p3 = Predicate {
            lhs: Expr::Col(0),
            op: CmpOp::Gt,
            rhs: Expr::Const(100),
        };
        assert!(!eval_all(&[p1, p2, p3], &row));
    }
}
