//! Persistent worker pool with busy-time accounting.
//!
//! QuickStep schedules relational work orders over a fixed set of worker
//! threads; RecStep inherits that model and the paper's CPU-utilization
//! figures (7a, 16) are direct observations of how busy those workers are.
//! This module provides the equivalent substrate:
//!
//! * a pool of `threads` workers living for the engine's lifetime (spawning
//!   threads per operator would dominate programs like CSDA with ~1000 tiny
//!   iterations);
//! * [`ThreadPool::run`], which executes one closure instance per worker and
//!   waits — operators implement morsel-driven parallelism on top by pulling
//!   chunk indices from an atomic counter;
//! * per-worker busy-nanosecond counters, sampled by the benchmark harness
//!   to reconstruct utilization-over-time series.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::sync::WaitGroup;
use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce(usize) + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    busy_ns: Vec<AtomicU64>,
}

/// A fixed-size worker pool.
///
/// Dropping the pool shuts the workers down and joins them.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

/// Context handed to per-worker closures.
///
/// `worker` is a *slot* id unique within one [`ThreadPool::run`] invocation
/// (`0..threads`), not an OS thread id: the job queue is shared, so a single
/// OS worker may execute several of the N jobs back-to-back when others are
/// busy. Slots are what make per-"worker" output buffers race-free — two
/// concurrently running jobs always hold different slots.
#[derive(Clone, Copy, Debug)]
pub struct WorkerCtx {
    /// Slot index of this closure instance in `0..threads`.
    pub worker: usize,
    /// Total number of workers in the pool.
    pub threads: usize,
}

impl ThreadPool {
    /// Create a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            busy_ns: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (0..threads)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("recstep-worker-{worker}"))
                    .spawn(move || worker_loop(worker, &shared))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            threads,
        }
    }

    /// Number of workers.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `f` once on every worker and wait for all of them.
    ///
    /// `f` only needs to live for the duration of this call: the pool waits
    /// on a [`WaitGroup`] before returning, so extending the lifetime to
    /// `'static` for the job queue is sound.
    pub fn run<'scope, F>(&self, f: F)
    where
        F: Fn(WorkerCtx) + Sync + 'scope,
    {
        let f_ref: &(dyn Fn(WorkerCtx) + Sync) = &f;
        // SAFETY: all jobs referencing `f_ref` complete before `wg.wait()`
        // returns (each job drops its WaitGroup clone after running, and a
        // panicking job drops it during unwind inside `catch_unwind`), so the
        // reference never outlives the borrow of `f`.
        let f_static: &'static (dyn Fn(WorkerCtx) + Sync) = unsafe { std::mem::transmute(f_ref) };
        let wg = WaitGroup::new();
        let slots = Arc::new(AtomicUsize::new(0));
        let panicked = Arc::new(AtomicBool::new(false));
        {
            let mut q = self.shared.queue.lock();
            for _ in 0..self.threads {
                let wg = wg.clone();
                let threads = self.threads;
                let slots = Arc::clone(&slots);
                let panicked = Arc::clone(&panicked);
                q.push_back(Box::new(move |_os_worker| {
                    let slot = slots.fetch_add(1, Ordering::Relaxed);
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        f_static(WorkerCtx {
                            worker: slot,
                            threads,
                        });
                    }));
                    if r.is_err() {
                        // Set before `wg` drops so the waiter observes it.
                        panicked.store(true, Ordering::SeqCst);
                    }
                    drop(wg);
                }));
            }
        }
        self.shared.available.notify_all();
        wg.wait();
        if panicked.load(Ordering::SeqCst) {
            panic!("a worker task panicked");
        }
    }

    /// Morsel-driven parallel loop over `0..n` in chunks of `grain`.
    ///
    /// `f` receives the item range plus the executing worker's index (useful
    /// for writing into per-worker output buffers without synchronization).
    pub fn parallel_for<'scope, F>(&self, n: usize, grain: usize, f: F)
    where
        F: Fn(Range<usize>, usize) + Sync + 'scope,
    {
        if n == 0 {
            return;
        }
        let grain = grain.max(1);
        // Tiny inputs: skip the queue round-trip entirely.
        if n <= grain {
            f(0..n, 0);
            return;
        }
        let next = AtomicUsize::new(0);
        self.run(|ctx| loop {
            let start = next.fetch_add(grain, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + grain).min(n);
            f(start..end, ctx.worker);
        });
    }

    /// Total busy nanoseconds accumulated across all workers since pool
    /// creation. The harness differentiates successive samples to compute
    /// utilization: `Δbusy / (Δwall × threads)`.
    pub fn busy_ns_total(&self) -> u64 {
        self.shared
            .busy_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Busy nanoseconds of a single worker.
    pub fn busy_ns_of(&self, worker: usize) -> u64 {
        self.shared.busy_ns[worker].load(Ordering::Relaxed)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            // The store must happen under the queue lock: a worker that has
            // just seen an empty queue re-checks `shutdown` while holding
            // the lock before parking, so storing outside the lock could
            // slip between its check and its wait — a missed wakeup that
            // deadlocks the join below.
            let _guard = self.shared.queue.lock();
            self.shared.shutdown.store(true, Ordering::SeqCst);
        }
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Cooperative cancellation flag shared between a requester and a running
/// evaluation.
///
/// The fixpoint driver polls [`CancelToken::is_cancelled`] at iteration
/// boundaries — the only points where aborting leaves no partial state —
/// so a server-side timeout stops a runaway recursion within one iteration
/// instead of running it to completion. The token carries an optional
/// deadline, letting the thread that runs the fixpoint enforce its own
/// timeout without a watchdog.
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Default)]
struct CancelInner {
    flag: AtomicBool,
    deadline: Mutex<Option<Instant>>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally reports cancelled once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        let t = Self::default();
        *t.inner.deadline.lock() = Some(deadline);
        t
    }

    /// Request cancellation. Idempotent; wakes nothing — the evaluation
    /// notices at its next iteration boundary.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::SeqCst);
    }

    /// True once [`CancelToken::cancel`] was called or the deadline passed.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::SeqCst) {
            return true;
        }
        match *self.inner.deadline.lock() {
            Some(d) if Instant::now() >= d => {
                self.inner.flag.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }
}

/// Outcome of [`Semaphore::acquire`].
pub enum Admission {
    /// A permit was granted; dropping the guard releases it.
    Admitted(SemaphoreGuard),
    /// The wait queue was already at capacity — shed the request.
    QueueFull,
    /// The caller's deadline passed while queued.
    TimedOut,
}

/// Counting semaphore with a bounded wait queue — the admission-control
/// primitive for the query service.
///
/// At most `permits` holders run concurrently; at most `queue_depth`
/// further callers may block waiting. Callers beyond that are shed
/// immediately ([`Admission::QueueFull`]) so load peaks turn into fast
/// `429`s instead of unbounded memory growth.
pub struct Semaphore {
    state: Mutex<SemState>,
    freed: Condvar,
    permits: usize,
    queue_depth: usize,
}

struct SemState {
    available: usize,
    waiting: usize,
}

/// RAII permit returned by [`Semaphore::acquire`].
pub struct SemaphoreGuard {
    sem: Arc<Semaphore>,
}

impl Semaphore {
    /// A semaphore with `permits` concurrent holders (clamped to ≥ 1) and
    /// room for `queue_depth` waiters.
    pub fn new(permits: usize, queue_depth: usize) -> Arc<Self> {
        let permits = permits.max(1);
        Arc::new(Semaphore {
            state: Mutex::new(SemState {
                available: permits,
                waiting: 0,
            }),
            freed: Condvar::new(),
            permits,
            queue_depth,
        })
    }

    /// Maximum concurrent holders.
    pub fn permits(&self) -> usize {
        self.permits
    }

    /// Acquire a permit, waiting until `deadline` if one is not free.
    pub fn acquire(self: &Arc<Self>, deadline: Instant) -> Admission {
        let mut state = self.state.lock();
        if state.available == 0 {
            if state.waiting >= self.queue_depth {
                return Admission::QueueFull;
            }
            state.waiting += 1;
            while state.available == 0 {
                if self.freed.wait_until(&mut state, deadline).timed_out() {
                    state.waiting -= 1;
                    return Admission::TimedOut;
                }
            }
            state.waiting -= 1;
        }
        state.available -= 1;
        Admission::Admitted(SemaphoreGuard {
            sem: Arc::clone(self),
        })
    }
}

impl Drop for SemaphoreGuard {
    fn drop(&mut self) {
        let mut state = self.sem.state.lock();
        state.available += 1;
        drop(state);
        self.sem.freed.notify_one();
    }
}

fn worker_loop(worker: usize, shared: &PoolShared) {
    loop {
        let job = {
            let mut q = shared.queue.lock();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                shared.available.wait(&mut q);
            }
        };
        let start = Instant::now();
        // Jobs from `run` catch panics internally; this is the backstop that
        // keeps a worker alive if a raw job ever unwinds anyway.
        let _ = catch_unwind(AssertUnwindSafe(|| job(worker)));
        shared.busy_ns[worker].fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    #[test]
    fn run_hands_out_each_slot_exactly_once() {
        let pool = ThreadPool::new(4);
        let seen: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|ctx| {
            assert_eq!(ctx.threads, 4);
            seen[ctx.worker].fetch_add(1, Ordering::Relaxed);
        });
        for s in &seen {
            assert_eq!(s.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn parallel_for_covers_all_items_exactly_once() {
        let pool = ThreadPool::new(3);
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, 64, |range, _| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_small_input_runs_inline() {
        let pool = ThreadPool::new(2);
        let sum = AtomicI64::new(0);
        pool.parallel_for(3, 8, |range, worker| {
            assert_eq!(worker, 0);
            for i in range {
                sum.fetch_add(i as i64, Ordering::Relaxed);
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn busy_time_accumulates() {
        let pool = ThreadPool::new(2);
        pool.run(|_| {
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        assert!(pool.busy_ns_total() >= 2 * 4_000_000);
    }

    #[test]
    fn borrows_local_state_safely() {
        let pool = ThreadPool::new(4);
        let data: Vec<i64> = (0..1000).collect();
        let total = AtomicI64::new(0);
        pool.parallel_for(data.len(), 10, |range, _| {
            let part: i64 = data[range].iter().sum();
            total.fetch_add(part, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn panic_in_task_propagates_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|ctx| {
                if ctx.worker == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool still functional afterwards.
        let counter = AtomicUsize::new(0);
        pool.run(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        pool.run(|ctx| assert_eq!(ctx.threads, 1));
    }

    #[test]
    fn cancel_token_flag_and_deadline() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let t2 = t.clone();
        t2.cancel();
        assert!(t.is_cancelled());

        let past = CancelToken::with_deadline(Instant::now());
        assert!(past.is_cancelled());
        let future =
            CancelToken::with_deadline(Instant::now() + std::time::Duration::from_secs(3600));
        assert!(!future.is_cancelled());
    }

    #[test]
    fn semaphore_admits_queues_and_sheds() {
        let sem = Semaphore::new(1, 1);
        let deadline = Instant::now() + std::time::Duration::from_millis(20);
        let g1 = match sem.acquire(deadline) {
            Admission::Admitted(g) => g,
            _ => panic!("first acquire must be admitted"),
        };
        // Queue slot taken by a blocked waiter, third caller is shed.
        std::thread::scope(|s| {
            let sem2 = Arc::clone(&sem);
            let waiter = s.spawn(move || {
                let d = Instant::now() + std::time::Duration::from_secs(5);
                matches!(sem2.acquire(d), Admission::Admitted(_))
            });
            // Give the waiter time to enqueue, then overflow the queue.
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert!(matches!(
                sem.acquire(Instant::now() + std::time::Duration::from_secs(5)),
                Admission::QueueFull
            ));
            drop(g1);
            assert!(waiter.join().unwrap());
        });
        // Queued waiter whose deadline passes times out.
        let _g = match sem.acquire(Instant::now() + std::time::Duration::from_secs(5)) {
            Admission::Admitted(g) => g,
            _ => panic!("reacquire must succeed"),
        };
        assert!(matches!(
            sem.acquire(Instant::now() + std::time::Duration::from_millis(10)),
            Admission::TimedOut
        ));
    }
}
