//! Shared error type for the workspace.

use std::fmt;

/// Errors surfaced by the Datalog frontend, the storage/execution substrate
/// and the engine driver.
#[derive(Debug)]
pub enum Error {
    /// A syntax error while parsing a `.datalog` program.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        col: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A semantic error found by the rule analyzer (unsafe rule, unstratified
    /// negation, arity mismatch, unknown relation, ...).
    Analysis(String),
    /// A runtime error inside the relational substrate.
    Exec(String),
    /// An I/O error from the (simulated) persistent storage layer.
    Io(std::io::Error),
    /// The evaluation was cooperatively cancelled (request timeout or an
    /// explicit abort) at an iteration boundary; no partial state escaped.
    Cancelled,
    /// Durable state on disk is inconsistent in a way recovery cannot
    /// repair by truncation (a corrupt snapshot table, a manifest that
    /// fails its checksum). Distinct from [`Error::Io`]: the bytes were
    /// read fine, they just cannot be trusted.
    Durability(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            Error::Analysis(msg) => write!(f, "analysis error: {msg}"),
            Error::Exec(msg) => write!(f, "execution error: {msg}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Cancelled => write!(f, "evaluation cancelled"),
            Error::Durability(msg) => write!(f, "durability error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

impl Error {
    /// Shorthand constructor for analysis errors.
    pub fn analysis(msg: impl Into<String>) -> Self {
        Error::Analysis(msg.into())
    }

    /// Shorthand constructor for execution errors.
    pub fn exec(msg: impl Into<String>) -> Self {
        Error::Exec(msg.into())
    }

    /// Shorthand constructor for durability errors.
    pub fn durability(msg: impl Into<String>) -> Self {
        Error::Durability(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::Parse {
            line: 3,
            col: 7,
            msg: "unexpected ')'".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:7: unexpected ')'");
        assert_eq!(Error::analysis("bad").to_string(), "analysis error: bad");
        assert_eq!(Error::exec("boom").to_string(), "execution error: boom");
        assert_eq!(Error::Cancelled.to_string(), "evaluation cancelled");
        assert_eq!(
            Error::durability("torn manifest").to_string(),
            "durability error: torn manifest"
        );
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }
}
