//! Shared substrate for the RecStep reproduction.
//!
//! This crate holds the pieces every other crate leans on:
//!
//! * [`hash`] — FxHash-style fast hashing for integer-heavy keys plus a
//!   strong 64-bit mixer for bucket addressing of compact concatenated keys;
//! * [`sched`] — a persistent worker pool with per-worker busy-time
//!   accounting (the source of the paper's CPU-utilization figures);
//! * [`mem`] — a byte-counting global allocator shim and a sampler that
//!   produces the memory-over-time series of Figures 3/6/11/14;
//! * [`dict`] — dictionary encoding of symbolic domains into the dense
//!   integer ids Datalog evaluation operates on (paper §5.2, footnote 2);
//! * [`fail`] — failpoints: deterministic fault injection for crash-safety
//!   tests (zero-cost when disabled);
//! * [`error`] — the shared error type.

pub mod dict;
pub mod error;
pub mod fail;
pub mod hash;
pub mod lang;
pub mod mem;
pub mod sched;

pub use error::{Error, Result};

/// The single value type flowing through the engine.
///
/// The paper evaluates exclusively over dictionary-encoded integer domains
/// (§5.2 fn. 2: "The inputs of Datalog programs are usually integers
/// transformed by mapping the active domain of the original data"), and SSSP
/// weights plus `d1 + d2` arithmetic stay integral, so a signed 64-bit value
/// covers every benchmark without a tagged union.
pub type Value = i64;
