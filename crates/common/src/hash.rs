//! Fast hashing utilities.
//!
//! Two distinct needs show up in the engine:
//!
//! 1. general-purpose hash maps over small integer-ish keys — the Rust
//!    Performance Book recommends an FxHash-style multiplicative hasher for
//!    this, which we implement here as [`FxHasher`] (no external dependency);
//! 2. bucket addressing for the compact concatenated keys (CCK) of the
//!    paper's fast-deduplication hash table. CCKs are *dense* (consecutive
//!    vertex ids), so using them directly as bucket indices would pile whole
//!    id ranges into neighbouring buckets of a power-of-two table. [`mix64`]
//!    is a full-avalanche finalizer (splitmix64) that spreads them without
//!    losing the "key is its own hash" property the paper exploits: the mix
//!    is stateless and bijective, so no hash value needs to be stored.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher in the style of rustc's FxHash.
///
/// Quality is modest but throughput on short integer keys is excellent,
/// which matches the engine's workload (dictionary-encoded ids).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// splitmix64 finalizer: a cheap bijective full-avalanche mix.
///
/// Used to turn compact concatenated keys (which are frequently consecutive
/// integers) into well-spread bucket indices for power-of-two tables.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash an arbitrary-width row (slice of values) down to 64 bits.
///
/// This is the fallback path of the fast-dedup table for tuples whose
/// concatenated key does not fit in 64 bits (paper §5.2 only promises the
/// compact-key trick "when the number of attributes of the tuple is small").
#[inline]
pub fn hash_row(row: &[i64]) -> u64 {
    let mut h = FxHasher::default();
    for &v in row {
        h.write_i64(v);
    }
    mix64(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx_hasher_differs_on_inputs() {
        let mut a = FxHasher::default();
        a.write_u64(1);
        let mut b = FxHasher::default();
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fx_hasher_byte_stream_matches_word_stream_length_handling() {
        // 12 bytes: one exact chunk + remainder; just assert determinism.
        let bytes = [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];
        let mut a = FxHasher::default();
        a.write(&bytes);
        let mut b = FxHasher::default();
        b.write(&bytes);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn mix64_is_injective_on_sample() {
        // splitmix64 is bijective; sanity-check no collisions on a range.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn mix64_spreads_consecutive_keys_across_buckets() {
        // Dense ids must not map to dense buckets: check a 1024-bucket table
        // gets reasonable occupancy from 1024 consecutive keys.
        let buckets = 1024u64;
        let mut used = vec![false; buckets as usize];
        for i in 0..buckets {
            used[(mix64(i) & (buckets - 1)) as usize] = true;
        }
        let occupied = used.iter().filter(|&&b| b).count();
        // Ideal random occupancy is ~63.2%; anything above 50% is fine.
        assert!(occupied > 512, "only {occupied} buckets used");
    }

    #[test]
    fn hash_row_respects_all_columns() {
        assert_ne!(hash_row(&[1, 2]), hash_row(&[2, 1]));
        assert_ne!(hash_row(&[1]), hash_row(&[1, 0]));
    }

    #[test]
    fn fx_map_works() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m[&21], 42);
    }
}
