//! bddbddb-style evaluation: Datalog over binary decision diagrams.
//!
//! bddbddb "pioneered the use of Datalog in program analysis by employing
//! binary decision diagrams to compactly represent the results" (paper §2).
//! This module implements the essential machinery from scratch:
//!
//! * a hash-consed BDD manager ([`BddManager`]) with unique table, operation
//!   cache, `and`/`or`, existential quantification over a variable *bank*
//!   and bank renaming;
//! * binary relations encoded over three interleaved banks (x, z, y) of
//!   `bits` Boolean variables each, MSB first — the interleaving bddbddb
//!   uses so that composition `∃z. R(x,z) ∧ S(z,y)` stays order-compatible;
//! * naïve fixpoint evaluation of composition-style recursion
//!   (hash-consing makes the `==` fixpoint test O(1)).
//!
//! The paper's observation that bddbddb degrades with many variables /
//! large domains falls out naturally: node counts explode once the
//! overapproximation redundancy BDDs exploit disappears.

use recstep_common::hash::FxHashMap;
use recstep_common::Value;

/// Node index (0 = false terminal, 1 = true terminal).
pub type Ref = u32;

/// The false terminal.
pub const ZERO: Ref = 0;
/// The true terminal.
pub const ONE: Ref = 1;

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    ExistsBank(u8),
    Rename(u8, u8),
}

/// Variable banks of the relation encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bank {
    /// Source column.
    X = 0,
    /// Join (middle) column.
    Z = 1,
    /// Target column.
    Y = 2,
}

/// Hash-consed BDD manager with relation-level helpers.
pub struct BddManager {
    nodes: Vec<Node>,
    unique: FxHashMap<Node, Ref>,
    cache: FxHashMap<(Op, Ref, Ref), Ref>,
    /// Bits per bank (domain size ≤ 2^bits).
    bits: u32,
}

impl BddManager {
    /// Manager for relations over domains of ≤ `2^bits` values.
    pub fn new(bits: u32) -> Self {
        assert!(bits > 0 && bits <= 31, "bits out of range");
        let nodes = vec![
            Node {
                var: u32::MAX,
                lo: ZERO,
                hi: ZERO,
            }, // false
            Node {
                var: u32::MAX,
                lo: ONE,
                hi: ONE,
            }, // true
        ];
        BddManager {
            nodes,
            unique: FxHashMap::default(),
            cache: FxHashMap::default(),
            bits,
        }
    }

    /// Bits per bank.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of live nodes (memory proxy; the paper's bddbddb memory story
    /// is node-count blowup).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Variable id of `bank` bit `bit` (0 = most significant): interleaved
    /// order x0 z0 y0 x1 z1 y1 ...
    #[inline]
    fn var_of(&self, bank: Bank, bit: u32) -> u32 {
        bit * 3 + bank as u32
    }

    fn bank_of_var(var: u32) -> u8 {
        (var % 3) as u8
    }

    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = self.nodes.len() as Ref;
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    fn var(&self, r: Ref) -> u32 {
        if r <= ONE {
            u32::MAX
        } else {
            self.nodes[r as usize].var
        }
    }

    /// Conjunction.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        if f == ZERO || g == ZERO {
            return ZERO;
        }
        if f == ONE {
            return g;
        }
        if g == ONE || f == g {
            return f;
        }
        let key = (Op::And, f.min(g), f.max(g));
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let (vf, vg) = (self.var(f), self.var(g));
        let v = vf.min(vg);
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let lo = self.and(f0, g0);
        let hi = self.and(f1, g1);
        let r = self.mk(v, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// Disjunction.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        if f == ONE || g == ONE {
            return ONE;
        }
        if f == ZERO {
            return g;
        }
        if g == ZERO || f == g {
            return f;
        }
        let key = (Op::Or, f.min(g), f.max(g));
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let (vf, vg) = (self.var(f), self.var(g));
        let v = vf.min(vg);
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let lo = self.or(f0, g0);
        let hi = self.or(f1, g1);
        let r = self.mk(v, lo, hi);
        self.cache.insert(key, r);
        r
    }

    #[inline]
    fn cofactors(&self, f: Ref, v: u32) -> (Ref, Ref) {
        if f <= ONE || self.var(f) != v {
            (f, f)
        } else {
            let n = self.nodes[f as usize];
            (n.lo, n.hi)
        }
    }

    /// Existentially quantify every variable of a bank.
    pub fn exists_bank(&mut self, f: Ref, bank: Bank) -> Ref {
        if f <= ONE {
            return f;
        }
        let key = (Op::ExistsBank(bank as u8), f, 0);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let n = self.nodes[f as usize];
        let lo = self.exists_bank(n.lo, bank);
        let hi = self.exists_bank(n.hi, bank);
        let r = if Self::bank_of_var(n.var) == bank as u8 {
            self.or(lo, hi)
        } else {
            self.mk(n.var, lo, hi)
        };
        self.cache.insert(key, r);
        r
    }

    /// Rename every variable of bank `from` to the same bit of bank `to`
    /// (the function must not depend on bank `to`). Order-safe because
    /// banks interleave per bit.
    pub fn rename_bank(&mut self, f: Ref, from: Bank, to: Bank) -> Ref {
        if f <= ONE {
            return f;
        }
        let key = (Op::Rename(from as u8, to as u8), f, 0);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let n = self.nodes[f as usize];
        let lo = self.rename_bank(n.lo, from, to);
        let hi = self.rename_bank(n.hi, from, to);
        let var = if Self::bank_of_var(n.var) == from as u8 {
            n.var - from as u32 + to as u32
        } else {
            n.var
        };
        let r = self.mk_ordered(var, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// `mk` for rename results: adjacent-bank renames of bank-disjoint
    /// functions preserve ordering, which we assert in debug builds.
    fn mk_ordered(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        debug_assert!(
            self.var(lo) > var && self.var(hi) > var,
            "rename broke ordering"
        );
        self.mk(var, lo, hi)
    }

    /// The cube for one `(x, y)` pair over banks (bx, by).
    fn pair_cube(&mut self, x: Value, y: Value, bx: Bank, by: Bank) -> Ref {
        let mut f = ONE;
        // Build bottom-up (highest variable id first).
        for bit in (0..self.bits).rev() {
            for &(bank, v) in &[(by, y), (bx, x)] {
                let var = self.var_of(bank, bit);
                let set = (v >> (self.bits - 1 - bit)) & 1 == 1;
                f = if set {
                    self.mk(var, ZERO, f)
                } else {
                    self.mk(var, f, ZERO)
                };
            }
        }
        f
    }

    /// Encode an edge list as a relation over banks `(bx, by)`.
    pub fn from_edges(&mut self, edges: &[(Value, Value)], bx: Bank, by: Bank) -> Ref {
        let mut f = ZERO;
        for &(x, y) in edges {
            debug_assert!(x >= 0 && y >= 0 && x < (1 << self.bits) && y < (1 << self.bits));
            let cube = self.pair_cube(x, y, bx, by);
            f = self.or(f, cube);
        }
        f
    }

    /// Decode a relation over banks `(X, Y)` back to sorted pairs.
    pub fn to_pairs(&self, f: Ref) -> Vec<(Value, Value)> {
        let mut out = Vec::new();
        let mut assign = vec![None::<bool>; (self.bits * 3) as usize];
        self.enumerate(f, 0, &mut assign, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn enumerate(
        &self,
        f: Ref,
        next_var: u32,
        assign: &mut Vec<Option<bool>>,
        out: &mut Vec<(Value, Value)>,
    ) {
        if f == ZERO {
            return;
        }
        let total = self.bits * 3;
        if next_var == total {
            debug_assert_eq!(f, ONE);
            // Read x (bank 0) and y (bank 2); z must be don't-care.
            let mut x: Value = 0;
            let mut y: Value = 0;
            for bit in 0..self.bits {
                x = (x << 1) | assign[(bit * 3) as usize].unwrap_or(false) as Value;
                y = (y << 1) | assign[(bit * 3 + 2) as usize].unwrap_or(false) as Value;
            }
            out.push((x, y));
            return;
        }
        let v = self.var(f);
        if v == next_var {
            let n = self.nodes[f as usize];
            assign[next_var as usize] = Some(false);
            self.enumerate(n.lo, next_var + 1, assign, out);
            assign[next_var as usize] = Some(true);
            self.enumerate(n.hi, next_var + 1, assign, out);
            assign[next_var as usize] = None;
        } else {
            // Skipped variable: don't-care. For z-bank variables both
            // settings yield the same pair, so fix to false; x/y don't-care
            // bits must branch.
            let bank = Self::bank_of_var(next_var);
            if bank == Bank::Z as u8 {
                assign[next_var as usize] = Some(false);
                self.enumerate(f, next_var + 1, assign, out);
                assign[next_var as usize] = None;
            } else {
                for b in [false, true] {
                    assign[next_var as usize] = Some(b);
                    self.enumerate(f, next_var + 1, assign, out);
                }
                assign[next_var as usize] = None;
            }
        }
    }

    /// Relational composition `∃z. F(x,z) ∧ G(z,y)` for relations stored
    /// over banks `(X, Y)`.
    pub fn compose(&mut self, f: Ref, g: Ref) -> Ref {
        let f_xz = self.rename_bank(f, Bank::Y, Bank::Z); // F(x,z)
        let g_zy = self.rename_bank(g, Bank::X, Bank::Z); // G(z,y)
        let both = self.and(f_xz, g_zy);
        self.exists_bank(both, Bank::Z)
    }

    /// Transitive closure by naive iteration:
    /// `T ← T ∨ (T ∘ A)` until the hash-consed fixpoint.
    pub fn transitive_closure(&mut self, edges: Ref) -> Ref {
        let mut t = edges;
        loop {
            let step = self.compose(t, edges);
            let next = self.or(t, step);
            if next == t {
                return t;
            }
            t = next;
        }
    }
}

/// bddbddb-stand-in evaluation of TC over an edge list; returns the pairs
/// and the peak node count (its memory proxy).
pub fn bdd_tc(edges: &[(Value, Value)]) -> (Vec<(Value, Value)>, usize) {
    let max = edges
        .iter()
        .flat_map(|&(a, b)| [a, b])
        .max()
        .unwrap_or(0)
        .max(1);
    let bits = (64 - (max as u64).leading_zeros()).max(1);
    let mut m = BddManager::new(bits);
    let e = m.from_edges(edges, Bank::X, Bank::Y);
    let t = m.transitive_closure(e);
    (m.to_pairs(t), m.node_count())
}

/// bddbddb-stand-in evaluation of REACH from seed vertices.
pub fn bdd_reach(edges: &[(Value, Value)], seeds: &[Value]) -> Vec<Value> {
    let max = edges
        .iter()
        .flat_map(|&(a, b)| [a, b])
        .chain(seeds.iter().copied())
        .max()
        .unwrap_or(0)
        .max(1);
    let bits = (64 - (max as u64).leading_zeros()).max(1);
    let mut m = BddManager::new(bits);
    let e = m.from_edges(edges, Bank::X, Bank::Y);
    // Monadic set as relation with x fixed to 0.
    let seed_pairs: Vec<(Value, Value)> = seeds.iter().map(|&s| (0, s)).collect();
    let mut r = m.from_edges(&seed_pairs, Bank::X, Bank::Y);
    loop {
        let step = m.compose(r, e);
        let next = m.or(r, step);
        if next == r {
            break;
        }
        r = next;
    }
    m.to_pairs(r).into_iter().map(|(_, y)| y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEngine;
    use recstep_datalog::programs;
    use std::collections::BTreeSet;

    fn rand_edges(n: u64, m: usize, seed: u64) -> Vec<(Value, Value)> {
        let mut state = seed;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        (0..m)
            .map(|_| ((rnd() % n) as Value, (rnd() % n) as Value))
            .collect()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut m = BddManager::new(4);
        let edges = vec![(0, 15), (7, 7), (3, 12), (15, 0)];
        let f = m.from_edges(&edges, Bank::X, Bank::Y);
        let mut expect = edges.clone();
        expect.sort_unstable();
        assert_eq!(m.to_pairs(f), expect);
    }

    #[test]
    fn boolean_identities() {
        let mut m = BddManager::new(3);
        let a = m.from_edges(&[(1, 2), (3, 4)], Bank::X, Bank::Y);
        let b = m.from_edges(&[(3, 4), (5, 6)], Bank::X, Bank::Y);
        let ab = m.and(a, b);
        assert_eq!(m.to_pairs(ab), vec![(3, 4)]);
        let aob = m.or(a, b);
        assert_eq!(m.to_pairs(aob), vec![(1, 2), (3, 4), (5, 6)]);
        // Idempotence / identities.
        assert_eq!(m.and(a, a), a);
        assert_eq!(m.or(a, a), a);
        assert_eq!(m.and(a, ONE), a);
        assert_eq!(m.or(a, ZERO), a);
        assert_eq!(m.and(a, ZERO), ZERO);
        assert_eq!(m.or(a, ONE), ONE);
    }

    #[test]
    fn compose_is_relational_join() {
        let mut m = BddManager::new(3);
        let f = m.from_edges(&[(1, 2), (4, 5)], Bank::X, Bank::Y);
        let g = m.from_edges(&[(2, 3), (5, 1), (7, 7)], Bank::X, Bank::Y);
        let c = m.compose(f, g);
        assert_eq!(m.to_pairs(c), vec![(1, 3), (4, 1)]);
    }

    #[test]
    fn tc_matches_naive_oracle() {
        let edges = rand_edges(25, 60, 17);
        let mut oracle = NaiveEngine::new();
        oracle.load_edges("arc", &edges);
        oracle.run_source(programs::TC).unwrap();
        let expect: BTreeSet<(Value, Value)> = oracle
            .rows("tc")
            .unwrap()
            .iter()
            .map(|r| (r[0], r[1]))
            .collect();
        let (got, nodes) = bdd_tc(&edges);
        assert_eq!(got.into_iter().collect::<BTreeSet<_>>(), expect);
        assert!(nodes > 2);
    }

    #[test]
    fn reach_matches_naive_oracle() {
        let edges = rand_edges(30, 70, 23);
        let mut oracle = NaiveEngine::new();
        oracle.load_edges("arc", &edges);
        oracle.load("id", [vec![3]]);
        oracle.run_source(programs::REACH).unwrap();
        let expect: BTreeSet<Value> = oracle.rows("reach").unwrap().iter().map(|r| r[0]).collect();
        let got: BTreeSet<Value> = bdd_reach(&edges, &[3]).into_iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn dense_relation_compresses() {
        // A complete bipartite relation has massive BDD sharing: node count
        // must be far below the tuple count (the bddbddb value proposition).
        let mut edges = Vec::new();
        for x in 0..32 {
            for y in 32..64 {
                edges.push((x as Value, y as Value));
            }
        }
        let mut m = BddManager::new(6);
        let f = m.from_edges(&edges, Bank::X, Bank::Y);
        assert_eq!(m.to_pairs(f).len(), 1024);
        // 1024 tuples, but the function is "x < 32 ∧ y ≥ 32": a handful of
        // decision nodes.
        let live = count_reachable(&m, f);
        assert!(
            live < 40,
            "dense relation should compress, got {live} nodes"
        );
    }

    fn count_reachable(m: &BddManager, f: Ref) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if r <= ONE || !seen.insert(r) {
                continue;
            }
            let n = m.nodes[r as usize];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.len()
    }

    #[test]
    fn empty_relation() {
        let mut m = BddManager::new(3);
        let f = m.from_edges(&[], Bank::X, Bank::Y);
        assert_eq!(f, ZERO);
        assert!(m.to_pairs(f).is_empty());
        assert_eq!(m.transitive_closure(f), ZERO);
    }
}
