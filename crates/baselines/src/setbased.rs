//! Compiled-loop-style semi-naïve evaluation over hashed tuple sets — the
//! Soufflé stand-in.
//!
//! Soufflé compiles Datalog to native loop nests over indexed relations and
//! parallelizes the outer loops. The strategy-level ingredients this
//! baseline reproduces:
//!
//! * relations as append-only row stores with a membership set, so
//!   *insert-if-new* replaces the RDBMS dedup + set-difference pipeline
//!   (deltas are discovered during insertion, not by a separate query);
//! * semi-naïve deltas as contiguous row ranges (`Old = [0, d0)`,
//!   `∆ = [d0, d1)`, `Full = [0, len)`);
//! * per-join hash indexes built on demand;
//! * optional library parallelism (rayon) over the probe loops, with a
//!   sequential merge — the shape of Soufflé's OpenMP loops.
//!
//! The engine consumes the same compiled plans as RecStep, so any
//! disagreement between the two is a bug in one of them — they share no
//! evaluation code.

use rayon::prelude::*;
use recstep_common::hash::{FxHashMap, FxHashSet};
use recstep_common::lang::{eval_all, Expr};
use recstep_common::{Error, Result, Value};
use recstep_datalog::analyze::analyze;
use recstep_datalog::parser::parse;
use recstep_datalog::plan::{
    compile, AtomVersion, CompiledIdb, CompiledProgram, CompiledStratum, SubQuery,
};

/// Evaluation statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SetStats {
    /// Fixpoint iterations across strata.
    pub iterations: usize,
    /// Tuples inserted (deduplicated).
    pub tuples: usize,
}

/// Minimal monotonic MIN/MAX map (independent of the exec substrate, so
/// this baseline shares no evaluation code with RecStep).
struct MonotonicAgg {
    is_min: bool,
    map: FxHashMap<Vec<Value>, Value>,
}

impl MonotonicAgg {
    fn new(func: recstep_common::lang::AggFunc) -> Result<Self> {
        use recstep_common::lang::AggFunc::*;
        match func {
            Min => Ok(MonotonicAgg {
                is_min: true,
                map: FxHashMap::default(),
            }),
            Max => Ok(MonotonicAgg {
                is_min: false,
                map: FxHashMap::default(),
            }),
            other => Err(Error::analysis(format!(
                "recursive aggregation requires MIN or MAX, got {}",
                other.sql()
            ))),
        }
    }

    fn absorb(&mut self, group: &[Value], v: Value) -> bool {
        match self.map.get_mut(group) {
            Some(cur) => {
                let better = if self.is_min { v < *cur } else { v > *cur };
                if better {
                    *cur = v;
                }
                better
            }
            None => {
                self.map.insert(group.to_vec(), v);
                true
            }
        }
    }

    fn to_columns(&self, group_arity: usize) -> Vec<Vec<Value>> {
        let mut cols = vec![Vec::with_capacity(self.map.len()); group_arity + 1];
        for (key, &v) in &self.map {
            for (c, &k) in key.iter().enumerate() {
                cols[c].push(k);
            }
            cols[group_arity].push(v);
        }
        cols
    }
}

struct RelData {
    rows: Vec<Vec<Value>>,
    set: FxHashSet<Vec<Value>>,
    /// Start of the current ∆ range.
    d0: usize,
    /// End of the current ∆ range.
    d1: usize,
}

impl RelData {
    fn new() -> Self {
        RelData {
            rows: Vec::new(),
            set: FxHashSet::default(),
            d0: 0,
            d1: 0,
        }
    }

    fn insert(&mut self, row: Vec<Value>) -> bool {
        if self.set.contains(&row) {
            return false;
        }
        self.set.insert(row.clone());
        self.rows.push(row);
        true
    }
}

/// The set-based semi-naïve engine.
pub struct SetEngine {
    parallel: bool,
    rels: FxHashMap<String, RelData>,
    /// Optional tuple budget for honest OOM reporting.
    pub tuple_budget: Option<usize>,
}

impl SetEngine {
    /// `parallel = true` uses rayon for the probe loops.
    pub fn new(parallel: bool) -> Self {
        SetEngine {
            parallel,
            rels: FxHashMap::default(),
            tuple_budget: None,
        }
    }

    /// Load rows into an input relation.
    pub fn load(&mut self, name: &str, rows: impl IntoIterator<Item = Vec<Value>>) {
        let rel = self
            .rels
            .entry(name.to_string())
            .or_insert_with(RelData::new);
        for row in rows {
            rel.insert(row);
        }
    }

    /// Load binary edges.
    pub fn load_edges(&mut self, name: &str, edges: &[(Value, Value)]) {
        self.load(name, edges.iter().map(|&(a, b)| vec![a, b]));
    }

    /// Rows of a relation.
    pub fn rows(&self, name: &str) -> Option<&[Vec<Value>]> {
        self.rels.get(name).map(|r| r.rows.as_slice())
    }

    /// Row count (0 if absent).
    pub fn row_count(&self, name: &str) -> usize {
        self.rels.get(name).map_or(0, |r| r.rows.len())
    }

    /// Parse + analyze + compile + evaluate.
    pub fn run_source(&mut self, src: &str) -> Result<SetStats> {
        let analysis = analyze(parse(src)?)?;
        let compiled = compile(&analysis)?;
        for (name, vals) in &analysis.program.facts {
            self.load(name, [vals.clone()]);
        }
        self.run(&compiled)
    }

    /// Evaluate a compiled program.
    pub fn run(&mut self, prog: &CompiledProgram) -> Result<SetStats> {
        for decl in &prog.relations {
            if decl.is_idb {
                self.rels.insert(decl.name.clone(), RelData::new());
            } else {
                self.rels
                    .entry(decl.name.clone())
                    .or_insert_with(RelData::new);
            }
        }
        let mut stats = SetStats::default();
        for stratum in &prog.strata {
            self.run_stratum(stratum, &mut stats)?;
        }
        stats.tuples = self.rels.values().map(|r| r.rows.len()).sum();
        Ok(stats)
    }

    fn run_stratum(&mut self, stratum: &CompiledStratum, stats: &mut SetStats) -> Result<()> {
        // Stratum entry: ∆ = current contents, Old = ∅.
        let mut monos: Vec<Option<MonotonicAgg>> = Vec::new();
        for idb in &stratum.idbs {
            let rel = self.rels.get_mut(&idb.rel).expect("declared");
            rel.d0 = 0;
            rel.d1 = rel.rows.len();
            match &idb.agg {
                Some(shape) if stratum.recursive => {
                    if shape.funcs.len() != 1 {
                        return Err(Error::analysis(
                            "set engine supports one aggregate term per recursive head",
                        ));
                    }
                    let mut mono = MonotonicAgg::new(shape.funcs[0])?;
                    for row in &rel.rows {
                        let group: Vec<Value> =
                            shape.group_positions.iter().map(|&p| row[p]).collect();
                        mono.absorb(&group, row[shape.agg_positions[0]]);
                    }
                    monos.push(Some(mono));
                }
                _ => monos.push(None),
            }
        }
        loop {
            stats.iterations += 1;
            let mut all_empty = true;
            let mut pending: Vec<(usize, usize)> = Vec::with_capacity(stratum.idbs.len());
            for (i, idb) in stratum.idbs.iter().enumerate() {
                let candidates = self.eval_idb(stratum, idb)?;
                let range = self.absorb(idb, candidates, monos[i].as_mut())?;
                if range.0 != range.1 {
                    all_empty = false;
                }
                pending.push(range);
            }
            // Stage the new ∆ ranges only after the full pass, so peers read
            // the previous iteration's deltas (the double-buffering the
            // paper's two-temp-tables scheme implies).
            for (idb, range) in stratum.idbs.iter().zip(pending) {
                let rel = self.rels.get_mut(&idb.rel).expect("declared");
                rel.d0 = range.0;
                rel.d1 = range.1;
            }
            if let Some(budget) = self.tuple_budget {
                let live: usize = self.rels.values().map(|r| r.rows.len()).sum();
                if live > budget {
                    return Err(Error::exec(format!(
                        "out of memory: {live} tuples > {budget} budget"
                    )));
                }
            }
            if !stratum.recursive || all_empty {
                break;
            }
        }
        // Rebuild aggregated relations from their monotonic maps.
        for (i, idb) in stratum.idbs.iter().enumerate() {
            if let Some(mono) = &monos[i] {
                let shape = idb.agg.as_ref().expect("mono implies agg");
                let g = shape.group_positions.len();
                let flat = mono.to_columns(g);
                let rel = self.rels.get_mut(&idb.rel).expect("declared");
                rel.rows.clear();
                rel.set.clear();
                let rows = flat.first().map_or(0, Vec::len);
                #[allow(clippy::needless_range_loop)]
                for r in 0..rows {
                    let mut row = vec![0; idb.arity];
                    for (gi, &p) in shape.group_positions.iter().enumerate() {
                        row[p] = flat[gi][r];
                    }
                    row[shape.agg_positions[0]] = flat[g][r];
                    rel.insert(row);
                }
                rel.d0 = 0;
                rel.d1 = rel.rows.len();
            }
        }
        Ok(())
    }

    /// Insert candidates; returns the new ∆ row range.
    fn absorb(
        &mut self,
        idb: &CompiledIdb,
        candidates: Vec<Vec<Value>>,
        mono: Option<&mut MonotonicAgg>,
    ) -> Result<(usize, usize)> {
        let rel = self.rels.get_mut(&idb.rel).expect("declared");
        let before = rel.rows.len();
        match (&idb.agg, mono) {
            (Some(shape), Some(mono)) => {
                // Recursive aggregation: candidates are [groups ‖ arg].
                let g = shape.group_positions.len();
                for cand in candidates {
                    let (group, rest) = cand.split_at(g);
                    if mono.absorb(group, rest[0]) {
                        let mut row = vec![0; idb.arity];
                        for (gi, &p) in shape.group_positions.iter().enumerate() {
                            row[p] = group[gi];
                        }
                        row[shape.agg_positions[0]] = rest[0];
                        rel.rows.push(row); // improvements feed the next ∆
                    }
                }
            }
            (Some(shape), None) => {
                // Non-recursive aggregation: plain group-by then insert.
                let g = shape.group_positions.len();
                let mut states: FxHashMap<Vec<Value>, Vec<Value>> = FxHashMap::default();
                for cand in candidates {
                    let (group, args) = cand.split_at(g);
                    match states.get_mut(group) {
                        Some(acc) => {
                            for ((a, &v), &f) in acc.iter_mut().zip(args).zip(&shape.funcs) {
                                use recstep_common::lang::AggFunc::*;
                                match f {
                                    Min => *a = (*a).min(v),
                                    Max => *a = (*a).max(v),
                                    Sum => *a = a.wrapping_add(v),
                                    Count => *a += 1,
                                    Avg => {
                                        return Err(Error::analysis(
                                            "set engine does not support AVG heads",
                                        ))
                                    }
                                }
                            }
                        }
                        None => {
                            let init: Vec<Value> = args
                                .iter()
                                .zip(&shape.funcs)
                                .map(|(&v, f)| {
                                    if matches!(f, recstep_common::lang::AggFunc::Count) {
                                        1
                                    } else {
                                        v
                                    }
                                })
                                .collect();
                            states.insert(group.to_vec(), init);
                        }
                    }
                }
                for (group, vals) in states {
                    let mut row = vec![0; idb.arity];
                    for (gi, &p) in shape.group_positions.iter().enumerate() {
                        row[p] = group[gi];
                    }
                    for (&p, v) in shape.agg_positions.iter().zip(vals) {
                        row[p] = v;
                    }
                    rel.insert(row);
                }
            }
            (None, _) => {
                for cand in candidates {
                    rel.insert(cand);
                }
            }
        }
        Ok((before, rel.rows.len()))
    }

    fn view(&self, stratum_rel: &str, version: AtomVersion) -> &[Vec<Value>] {
        let rel = &self.rels[stratum_rel];
        match version {
            AtomVersion::Base | AtomVersion::Full => &rel.rows,
            AtomVersion::Delta => &rel.rows[rel.d0..rel.d1],
            AtomVersion::Old => &rel.rows[..rel.d0],
        }
    }

    fn check_intermediate(&self, rows: usize) -> Result<()> {
        if let Some(budget) = self.tuple_budget {
            if rows > budget {
                return Err(Error::exec(format!(
                    "out of memory: {rows} intermediate tuples > {budget} budget"
                )));
            }
        }
        Ok(())
    }

    fn eval_idb(&self, _stratum: &CompiledStratum, idb: &CompiledIdb) -> Result<Vec<Vec<Value>>> {
        let mut out = Vec::new();
        for sq in &idb.subqueries {
            out.extend(self.eval_subquery(sq)?);
        }
        Ok(out)
    }

    fn eval_subquery(&self, sq: &SubQuery) -> Result<Vec<Vec<Value>>> {
        // Flattened accumulated rows, built scan by scan.
        let first = self.view(&sq.scans[0].rel, sq.scans[0].version);
        let mut acc: Vec<Vec<Value>> = first
            .iter()
            .filter(|row| eval_all(&sq.scans[0].filters, row))
            .cloned()
            .collect();
        for (ji, join) in sq.joins.iter().enumerate() {
            let scan = &sq.scans[ji + 1];
            let right_all = self.view(&scan.rel, scan.version);
            // Index the right side on its key columns.
            let mut index: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
            for (ri, row) in right_all.iter().enumerate() {
                if !eval_all(&scan.filters, row) {
                    continue;
                }
                let key: Vec<Value> = join.right_keys.iter().map(|&c| row[c]).collect();
                index.entry(key).or_default().push(ri);
            }
            // Exact output size from the index, before materializing: the
            // honest OOM check for dense joins.
            if self.tuple_budget.is_some() {
                let mut total = 0usize;
                let mut key = Vec::new();
                for left in &acc {
                    key.clear();
                    key.extend(join.left_keys.iter().map(|&c| left[c]));
                    if let Some(hits) = index.get(&key) {
                        total += hits.len();
                    }
                }
                self.check_intermediate(total)?;
            }
            let probe = |left: &Vec<Value>| -> Vec<Vec<Value>> {
                let key: Vec<Value> = join.left_keys.iter().map(|&c| left[c]).collect();
                match index.get(&key) {
                    None => Vec::new(),
                    Some(hits) => hits
                        .iter()
                        .map(|&ri| {
                            let mut row = left.clone();
                            row.extend_from_slice(&right_all[ri]);
                            row
                        })
                        .collect(),
                }
            };
            acc = if self.parallel && acc.len() > 1024 {
                acc.par_iter().flat_map_iter(probe).collect()
            } else {
                acc.iter().flat_map(probe).collect()
            };
            self.check_intermediate(acc.len())?;
        }
        // Residual predicates, negations, head projection.
        let project = |row: &Vec<Value>| -> Option<Vec<Value>> {
            if !eval_all(&sq.residual, row) {
                return None;
            }
            for neg in &sq.negations {
                let rel = &self.rels[&neg.rel];
                // Membership probe: bind the negated atom's columns.
                let mut probe_row = vec![0; neg.arity];
                for (&lk, &rk) in neg.left_keys.iter().zip(&neg.right_keys) {
                    probe_row[rk] = row[lk];
                }
                let hit = if neg.filters.is_empty() && neg.left_keys.len() == neg.arity {
                    rel.set.contains(&probe_row)
                } else {
                    // General case: scan (negated atoms with constants or
                    // partially bound columns are rare in the benchmarks).
                    rel.rows.iter().any(|cand| {
                        eval_all(&neg.filters, cand)
                            && neg
                                .left_keys
                                .iter()
                                .zip(&neg.right_keys)
                                .all(|(&lk, &rk)| cand[rk] == row[lk])
                    })
                };
                if hit {
                    return None;
                }
            }
            Some(sq.head_exprs.iter().map(|e: &Expr| e.eval(row)).collect())
        };
        Ok(if self.parallel && acc.len() > 1024 {
            acc.par_iter().filter_map(project).collect()
        } else {
            acc.iter().filter_map(project).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEngine;
    use recstep_datalog::programs;
    use std::collections::BTreeSet;

    fn rand_edges(n: u64, m: usize, seed: u64) -> Vec<(Value, Value)> {
        let mut state = seed;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        (0..m)
            .map(|_| ((rnd() % n) as Value, (rnd() % n) as Value))
            .collect()
    }

    fn set_of(rows: &[Vec<Value>]) -> BTreeSet<Vec<Value>> {
        rows.iter().cloned().collect()
    }

    #[test]
    fn tc_matches_naive_both_modes() {
        let edges = rand_edges(25, 70, 2);
        let mut oracle = NaiveEngine::new();
        oracle.load_edges("arc", &edges);
        oracle.run_source(programs::TC).unwrap();
        for parallel in [false, true] {
            let mut e = SetEngine::new(parallel);
            e.load_edges("arc", &edges);
            let stats = e.run_source(programs::TC).unwrap();
            assert_eq!(
                set_of(e.rows("tc").unwrap()),
                oracle.rows("tc").unwrap().iter().cloned().collect(),
                "parallel={parallel}"
            );
            assert!(stats.iterations > 1);
        }
    }

    #[test]
    fn sg_and_andersen_match_naive() {
        let edges = rand_edges(20, 60, 5);
        let mut oracle = NaiveEngine::new();
        oracle.load_edges("arc", &edges);
        oracle.run_source(programs::SG).unwrap();
        let mut e = SetEngine::new(false);
        e.load_edges("arc", &edges);
        e.run_source(programs::SG).unwrap();
        assert_eq!(
            set_of(e.rows("sg").unwrap()),
            oracle.rows("sg").unwrap().iter().cloned().collect()
        );

        let addr = rand_edges(15, 12, 7);
        let assign = rand_edges(15, 10, 8);
        let load = rand_edges(15, 6, 9);
        let store = rand_edges(15, 6, 10);
        let mut oracle = NaiveEngine::new();
        let mut e = SetEngine::new(true);
        for (name, data) in [
            ("addressOf", &addr),
            ("assign", &assign),
            ("load", &load),
            ("store", &store),
        ] {
            oracle.load_edges(name, data);
            e.load_edges(name, data);
        }
        oracle.run_source(programs::ANDERSEN).unwrap();
        e.run_source(programs::ANDERSEN).unwrap();
        assert_eq!(
            set_of(e.rows("pointsTo").unwrap()),
            oracle.rows("pointsTo").unwrap().iter().cloned().collect()
        );
    }

    #[test]
    fn cspa_mutual_recursion_matches_naive() {
        let assign = rand_edges(10, 8, 21);
        let deref = rand_edges(10, 8, 22);
        let mut oracle = NaiveEngine::new();
        let mut e = SetEngine::new(false);
        for (name, data) in [("assign", &assign), ("dereference", &deref)] {
            oracle.load_edges(name, data);
            e.load_edges(name, data);
        }
        oracle.run_source(programs::CSPA).unwrap();
        e.run_source(programs::CSPA).unwrap();
        for rel in ["valueFlow", "valueAlias", "memoryAlias"] {
            assert_eq!(
                set_of(e.rows(rel).unwrap()),
                oracle.rows(rel).unwrap().iter().cloned().collect(),
                "{rel}"
            );
        }
    }

    #[test]
    fn cc_recursive_min_matches_naive() {
        let edges = rand_edges(18, 40, 31);
        let mut oracle = NaiveEngine::new();
        oracle.load_edges("arc", &edges);
        oracle.run_source(programs::CC).unwrap();
        let mut e = SetEngine::new(false);
        e.load_edges("arc", &edges);
        e.run_source(programs::CC).unwrap();
        assert_eq!(
            set_of(e.rows("cc3").unwrap()),
            oracle.rows("cc3").unwrap().iter().cloned().collect()
        );
        assert_eq!(
            set_of(e.rows("cc").unwrap()),
            oracle.rows("cc").unwrap().iter().cloned().collect()
        );
    }

    #[test]
    fn negation_matches_naive() {
        let edges = rand_edges(8, 14, 41);
        let mut oracle = NaiveEngine::new();
        oracle.load_edges("arc", &edges);
        oracle.run_source(programs::NTC).unwrap();
        let mut e = SetEngine::new(false);
        e.load_edges("arc", &edges);
        e.run_source(programs::NTC).unwrap();
        assert_eq!(
            set_of(e.rows("ntc").unwrap()),
            oracle.rows("ntc").unwrap().iter().cloned().collect()
        );
    }

    #[test]
    fn budget_aborts() {
        let mut e = SetEngine::new(false);
        e.tuple_budget = Some(20);
        let edges: Vec<(Value, Value)> = (0..30).map(|i| (i, (i + 1) % 30)).collect();
        e.load_edges("arc", &edges);
        assert!(e.run_source(programs::TC).is_err());
    }
}
