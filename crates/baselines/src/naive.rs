//! Naïve bottom-up evaluation (paper §3.2).
//!
//! "In the naïve evaluation strategy, the rules are applied by using all the
//! facts produced so far" — every iteration re-derives everything from the
//! full relations until nothing new appears. This is both the paper's
//! pedagogical baseline (the cost semi-naïve evaluation eliminates) and this
//! repository's differential-testing oracle: a tuple-at-a-time interpreter
//! so simple it is easy to trust.

use std::collections::BTreeSet;

use recstep_common::hash::FxHashMap;
use recstep_common::lang::AggFunc;
use recstep_common::{Error, Result, Value};
use recstep_datalog::analyze::{analyze, Analysis};
use recstep_datalog::ast::{AExpr, Atom, BodyTerm, HeadTerm, Literal, Rule};
use recstep_datalog::parser::parse;

type Tuples = BTreeSet<Vec<Value>>;

/// The naïve evaluator.
#[derive(Default)]
pub struct NaiveEngine {
    rels: FxHashMap<String, Tuples>,
    /// Optional tuple budget: exceeding it aborts with an OOM error, like
    /// the engine's byte budget (for honest OOM bars in the harness).
    pub tuple_budget: Option<usize>,
}

impl NaiveEngine {
    /// Empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Load rows into an input relation.
    pub fn load(&mut self, name: &str, rows: impl IntoIterator<Item = Vec<Value>>) {
        self.rels.entry(name.to_string()).or_default().extend(rows);
    }

    /// Load binary edges.
    pub fn load_edges(&mut self, name: &str, edges: &[(Value, Value)]) {
        self.load(name, edges.iter().map(|&(a, b)| vec![a, b]));
    }

    /// Rows of a relation.
    pub fn rows(&self, name: &str) -> Option<&Tuples> {
        self.rels.get(name)
    }

    /// Row count of a relation (0 if absent).
    pub fn row_count(&self, name: &str) -> usize {
        self.rels.get(name).map_or(0, BTreeSet::len)
    }

    /// Parse, analyze and evaluate a program. Returns the number of naive
    /// iterations run (across strata).
    pub fn run_source(&mut self, src: &str) -> Result<usize> {
        let analysis = analyze(parse(src)?)?;
        self.run(&analysis)
    }

    /// Evaluate an analyzed program.
    pub fn run(&mut self, analysis: &Analysis) -> Result<usize> {
        // Reset IDBs; make sure every relation exists.
        for pred in &analysis.preds {
            if pred.is_idb {
                self.rels.insert(pred.name.clone(), Tuples::new());
            } else {
                self.rels.entry(pred.name.clone()).or_default();
            }
        }
        for (name, vals) in &analysis.program.facts {
            self.rels
                .entry(name.clone())
                .or_default()
                .insert(vals.clone());
        }
        let mut iterations = 0usize;
        for stratum in &analysis.strata {
            loop {
                iterations += 1;
                let mut changed = false;
                for &ri in &stratum.rules {
                    let rule = &analysis.program.rules[ri];
                    let derived = self.eval_rule(rule)?;
                    let target = self.rels.get_mut(&rule.head.pred).expect("created above");
                    if rule.has_aggregation() {
                        changed |= absorb_aggregated(target, rule, derived)?;
                    } else {
                        for t in derived {
                            changed |= target.insert(t);
                        }
                    }
                }
                if let Some(budget) = self.tuple_budget {
                    let live: usize = self.rels.values().map(BTreeSet::len).sum();
                    if live > budget {
                        return Err(Error::exec(format!(
                            "out of memory: {live} tuples > {budget} budget"
                        )));
                    }
                }
                if !stratum.recursive || !changed {
                    break;
                }
            }
        }
        Ok(iterations)
    }

    /// All satisfying head tuples of one rule against the current database
    /// (for aggregated heads: `[plain terms ‖ aggregate arguments]`).
    fn eval_rule(&self, rule: &Rule) -> Result<Vec<Vec<Value>>> {
        let positives: Vec<&Atom<BodyTerm>> = rule.positive_atoms().collect();
        let mut out = Vec::new();
        let mut binding: FxHashMap<&str, Value> = FxHashMap::default();
        self.join_rec(rule, &positives, 0, &mut binding, &mut out)?;
        Ok(out)
    }

    fn join_rec<'r>(
        &self,
        rule: &'r Rule,
        atoms: &[&'r Atom<BodyTerm>],
        depth: usize,
        binding: &mut FxHashMap<&'r str, Value>,
        out: &mut Vec<Vec<Value>>,
    ) -> Result<()> {
        if depth == atoms.len() {
            // Comparisons.
            for lit in &rule.body {
                if let Literal::Cmp { lhs, op, rhs } = lit {
                    if !op.apply(eval_aexpr(lhs, binding)?, eval_aexpr(rhs, binding)?) {
                        return Ok(());
                    }
                }
            }
            // Negations.
            for neg in rule.negated_atoms() {
                let rel = self.rels.get(&neg.pred);
                let tuple: Vec<Value> = neg
                    .terms
                    .iter()
                    .map(|t| match t {
                        BodyTerm::Const(c) => Ok(*c),
                        BodyTerm::Var(v) => binding
                            .get(v.as_str())
                            .copied()
                            .ok_or_else(|| Error::analysis(format!("unbound {v}"))),
                    })
                    .collect::<Result<_>>()?;
                if rel.is_some_and(|r| r.contains(&tuple)) {
                    return Ok(());
                }
            }
            // Head: plain terms first, aggregate arguments after (matching
            // the engine's pre-aggregation layout).
            let mut row = Vec::with_capacity(rule.head.terms.len());
            for t in &rule.head.terms {
                if let HeadTerm::Plain(e) = t {
                    row.push(eval_aexpr(e, binding)?);
                }
            }
            for t in &rule.head.terms {
                if let HeadTerm::Agg { expr, .. } = t {
                    row.push(eval_aexpr(expr, binding)?);
                }
            }
            out.push(row);
            return Ok(());
        }
        let atom = atoms[depth];
        let Some(rel) = self.rels.get(&atom.pred) else {
            return Ok(());
        };
        'tuples: for tuple in rel {
            let mut bound_here: Vec<&'r str> = Vec::new();
            for (t, &v) in atom.terms.iter().zip(tuple) {
                match t {
                    BodyTerm::Const(c) => {
                        if *c != v {
                            for b in bound_here.drain(..) {
                                binding.remove(b);
                            }
                            continue 'tuples;
                        }
                    }
                    BodyTerm::Var(name) => match binding.get(name.as_str()) {
                        Some(&cur) if cur != v => {
                            for b in bound_here.drain(..) {
                                binding.remove(b);
                            }
                            continue 'tuples;
                        }
                        Some(_) => {}
                        None => {
                            binding.insert(name.as_str(), v);
                            bound_here.push(name.as_str());
                        }
                    },
                }
            }
            self.join_rec(rule, atoms, depth + 1, binding, out)?;
            for b in bound_here {
                binding.remove(b);
            }
        }
        Ok(())
    }
}

/// Merge aggregated candidates into the head relation with the same
/// semantics as the engine: MIN/MAX keep the extremal value per group
/// (reporting change on improvement); other functions replace the group
/// (valid in non-recursive strata only, which the analyzer guarantees for
/// non-extremal aggregates).
fn absorb_aggregated(target: &mut Tuples, rule: &Rule, pre_agg: Vec<Vec<Value>>) -> Result<bool> {
    let mut group_positions = Vec::new();
    let mut agg_positions = Vec::new();
    let mut funcs = Vec::new();
    for (i, t) in rule.head.terms.iter().enumerate() {
        match t {
            HeadTerm::Plain(_) => group_positions.push(i),
            HeadTerm::Agg { func, .. } => {
                agg_positions.push(i);
                funcs.push(*func);
            }
        }
    }
    let g = group_positions.len();
    // Aggregate candidates per group.
    let mut grouped: FxHashMap<Vec<Value>, Vec<AggState>> = FxHashMap::default();
    for row in pre_agg {
        let (group, args) = row.split_at(g);
        match grouped.get_mut(group) {
            Some(states) => {
                for (st, (&a, &f)) in states.iter_mut().zip(args.iter().zip(&funcs)) {
                    st.update(f, a);
                }
            }
            None => {
                grouped.insert(
                    group.to_vec(),
                    args.iter()
                        .zip(&funcs)
                        .map(|(&a, &f)| AggState::new(f, a))
                        .collect(),
                );
            }
        }
    }
    // Current value per group in the target.
    let mut changed = false;
    for (group, states) in grouped {
        let mut new_row = vec![0; rule.head.terms.len()];
        for (gi, &p) in group_positions.iter().enumerate() {
            new_row[p] = group[gi];
        }
        for ((st, &p), &f) in states.iter().zip(&agg_positions).zip(&funcs) {
            new_row[p] = st.finish(f);
        }
        // Find an existing row with the same group.
        let existing: Option<Vec<Value>> = target
            .iter()
            .find(|row| {
                group_positions
                    .iter()
                    .enumerate()
                    .all(|(gi, &p)| row[p] == group[gi])
            })
            .cloned();
        match existing {
            None => {
                target.insert(new_row);
                changed = true;
            }
            Some(old) => {
                let improved = agg_positions.iter().zip(&funcs).any(|(&p, &f)| match f {
                    AggFunc::Min => new_row[p] < old[p],
                    AggFunc::Max => new_row[p] > old[p],
                    _ => new_row[p] != old[p],
                });
                if improved {
                    // Extremal merge: keep the best of old/new per column.
                    let mut merged = new_row.clone();
                    for (&p, &f) in agg_positions.iter().zip(&funcs) {
                        merged[p] = match f {
                            AggFunc::Min => merged[p].min(old[p]),
                            AggFunc::Max => merged[p].max(old[p]),
                            _ => merged[p],
                        };
                    }
                    if merged != old {
                        target.remove(&old);
                        target.insert(merged);
                        changed = true;
                    }
                }
            }
        }
    }
    Ok(changed)
}

#[derive(Clone, Copy)]
struct AggState {
    acc: i128,
    cnt: u64,
}

impl AggState {
    fn new(func: AggFunc, v: Value) -> Self {
        match func {
            AggFunc::Count => AggState { acc: 1, cnt: 1 },
            _ => AggState {
                acc: v as i128,
                cnt: 1,
            },
        }
    }

    fn update(&mut self, func: AggFunc, v: Value) {
        match func {
            AggFunc::Min => self.acc = self.acc.min(v as i128),
            AggFunc::Max => self.acc = self.acc.max(v as i128),
            AggFunc::Sum | AggFunc::Avg => {
                self.acc += v as i128;
                self.cnt += 1;
            }
            AggFunc::Count => {
                self.acc += 1;
                self.cnt += 1;
            }
        }
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Avg => (self.acc / self.cnt.max(1) as i128) as Value,
            _ => self.acc as Value,
        }
    }
}

fn eval_aexpr(e: &AExpr, binding: &FxHashMap<&str, Value>) -> Result<Value> {
    Ok(match e {
        AExpr::Var(v) => *binding
            .get(v.as_str())
            .ok_or_else(|| Error::analysis(format!("unbound variable {v}")))?,
        AExpr::Const(c) => *c,
        AExpr::Add(a, b) => eval_aexpr(a, binding)?.wrapping_add(eval_aexpr(b, binding)?),
        AExpr::Sub(a, b) => eval_aexpr(a, binding)?.wrapping_sub(eval_aexpr(b, binding)?),
        AExpr::Mul(a, b) => eval_aexpr(a, binding)?.wrapping_mul(eval_aexpr(b, binding)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recstep_datalog::programs;

    #[test]
    fn tc_on_chain() {
        let mut e = NaiveEngine::new();
        e.load_edges("arc", &[(1, 2), (2, 3), (3, 4)]);
        e.run_source(programs::TC).unwrap();
        assert_eq!(e.row_count("tc"), 6);
        assert!(e.rows("tc").unwrap().contains(&vec![1, 4]));
    }

    #[test]
    fn naive_needs_more_iterations_than_depth() {
        let mut e = NaiveEngine::new();
        let chain: Vec<(Value, Value)> = (0..20).map(|i| (i, i + 1)).collect();
        e.load_edges("arc", &chain);
        let iters = e.run_source(programs::TC).unwrap();
        assert!(
            iters >= 6,
            "fixpoint depth of TC on a 20-chain is log-ish, got {iters}"
        );
    }

    #[test]
    fn negation_complement() {
        let mut e = NaiveEngine::new();
        e.load_edges("arc", &[(1, 2), (2, 3)]);
        e.run_source(programs::NTC).unwrap();
        // nodes {1,2,3}; tc {(1,2),(2,3),(1,3)}; ntc = 9 - 3.
        assert_eq!(e.row_count("ntc"), 6);
    }

    #[test]
    fn recursive_min_cc() {
        let mut e = NaiveEngine::new();
        e.load_edges("arc", &[(5, 6), (6, 5), (1, 2)]);
        e.run_source(programs::CC).unwrap();
        let cc3 = e.rows("cc3").unwrap();
        assert!(cc3.contains(&vec![5, 5]));
        assert!(cc3.contains(&vec![6, 5]));
        assert!(cc3.contains(&vec![2, 1]));
        let cc: Vec<Vec<Value>> = e.rows("cc").unwrap().iter().cloned().collect();
        assert_eq!(cc, vec![vec![1], vec![5]]);
    }

    #[test]
    fn count_aggregation() {
        let mut e = NaiveEngine::new();
        e.load_edges("arc", &[(0, 1), (1, 2)]);
        e.run_source(programs::GTC).unwrap();
        let gtc = e.rows("gtc").unwrap();
        assert!(gtc.contains(&vec![0, 2]));
        assert!(gtc.contains(&vec![1, 1]));
    }

    #[test]
    fn sssp_shortest_distance() {
        let mut e = NaiveEngine::new();
        e.load("arc", [vec![0, 1, 5], vec![0, 1, 2], vec![1, 2, 1]]);
        e.load("id", [vec![0]]);
        e.run_source(programs::SSSP).unwrap();
        let sssp = e.rows("sssp").unwrap();
        assert!(sssp.contains(&vec![0, 0]));
        assert!(sssp.contains(&vec![1, 2]));
        assert!(sssp.contains(&vec![2, 3]));
    }

    #[test]
    fn constants_in_atoms_filter() {
        let mut e = NaiveEngine::new();
        e.load("s", [vec![1, 5], vec![2, 5], vec![3, 6]]);
        e.run_source("r(x) :- s(x, 5).").unwrap();
        let r = e.rows("r").unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&vec![1]) && r.contains(&vec![2]));
    }

    #[test]
    fn repeated_vars_in_atom_unify() {
        let mut e = NaiveEngine::new();
        e.load("s", [vec![1, 1], vec![1, 2], vec![3, 3]]);
        e.run_source("r(x) :- s(x, x).").unwrap();
        assert_eq!(e.row_count("r"), 2);
    }

    #[test]
    fn tuple_budget_aborts() {
        let mut e = NaiveEngine::new();
        e.tuple_budget = Some(10);
        let edges: Vec<(Value, Value)> = (0..20).map(|i| (i, (i + 1) % 20)).collect();
        e.load_edges("arc", &edges);
        let err = e.run_source(programs::TC).unwrap_err();
        assert!(err.to_string().contains("out of memory"));
    }
}
