//! Graspan-style worklist engine for CFL-reachability over binary grammars.
//!
//! Graspan "takes a context-free grammar representation and is thus
//! restricted to binary relations — graphs", processing one edge at a time
//! from a worklist and composing it with already-discovered edges (paper
//! §2). This module implements that strategy: a normalized grammar over
//! edge labels with production forms
//!
//! * `C ::= A`            (copy)
//! * `C ::= rev(A)`       (reverse)
//! * `C ::= A B`          (binary composition via a middle vertex)
//! * `C(x,x) ::= A(x,_)`  / `C(y,y) ::= A(_,y)` (reflexive projections,
//!   needed by CSPA's `valueFlow(x,x) :- assign(x,y)` rules)
//!
//! plus per-label in/out adjacency so both composition directions are
//! cheap. Ternary Datalog rules normalize into chains of binary
//! productions with intermediate labels (see [`grammars`]).

use recstep_common::hash::{FxHashMap, FxHashSet};
use recstep_common::{Error, Result, Value};

/// Index of a label in a [`Grammar`].
pub type LabelId = usize;

/// One production of the normalized grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Production {
    /// `dst ::= src`
    Copy { dst: LabelId, src: LabelId },
    /// `dst ::= rev(src)`
    Reverse { dst: LabelId, src: LabelId },
    /// `dst ::= a b` (compose through the shared middle vertex)
    Compose {
        dst: LabelId,
        a: LabelId,
        b: LabelId,
    },
    /// `dst(x, x) ::= src(x, _)`
    SelfSrc { dst: LabelId, src: LabelId },
    /// `dst(y, y) ::= src(_, y)`
    SelfDst { dst: LabelId, src: LabelId },
}

/// A normalized binary grammar.
#[derive(Clone, Debug, Default)]
pub struct Grammar {
    labels: Vec<String>,
    productions: Vec<Production>,
}

impl Grammar {
    /// Empty grammar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a label, returning its id.
    pub fn label(&mut self, name: &str) -> LabelId {
        if let Some(i) = self.labels.iter().position(|l| l == name) {
            return i;
        }
        self.labels.push(name.to_string());
        self.labels.len() - 1
    }

    /// Label id of an existing name.
    pub fn lookup(&self, name: &str) -> Option<LabelId> {
        self.labels.iter().position(|l| l == name)
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Add a production.
    pub fn add(&mut self, p: Production) {
        self.productions.push(p);
    }

    /// The productions.
    pub fn productions(&self) -> &[Production] {
        &self.productions
    }
}

/// Per-label edge storage: membership set plus out/in adjacency.
struct LabelEdges {
    set: FxHashSet<(u32, u32)>,
    out: FxHashMap<u32, Vec<u32>>,
    inn: FxHashMap<u32, Vec<u32>>,
}

impl LabelEdges {
    fn new() -> Self {
        LabelEdges {
            set: FxHashSet::default(),
            out: FxHashMap::default(),
            inn: FxHashMap::default(),
        }
    }

    fn insert(&mut self, u: u32, v: u32) -> bool {
        if !self.set.insert((u, v)) {
            return false;
        }
        self.out.entry(u).or_default().push(v);
        self.inn.entry(v).or_default().push(u);
        true
    }
}

/// Evaluation statistics of one worklist run.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorklistStats {
    /// Edges popped from the worklist.
    pub popped: usize,
    /// Edges inserted across all labels.
    pub edges: usize,
}

/// The worklist engine.
pub struct WorklistEngine {
    grammar: Grammar,
    edges: Vec<LabelEdges>,
    /// Optional edge budget for honest OOM reporting.
    pub edge_budget: Option<usize>,
}

impl WorklistEngine {
    /// Engine over a grammar.
    pub fn new(grammar: Grammar) -> Self {
        let n = grammar.label_count();
        let mut edges = Vec::with_capacity(n);
        for _ in 0..n {
            edges.push(LabelEdges::new());
        }
        WorklistEngine {
            grammar,
            edges,
            edge_budget: None,
        }
    }

    /// Load input edges under a label.
    pub fn load(&mut self, label: &str, input: &[(Value, Value)]) -> Result<LabelId> {
        let id = self
            .grammar
            .lookup(label)
            .ok_or_else(|| Error::exec(format!("unknown label '{label}'")))?;
        for &(u, v) in input {
            if u < 0 || v < 0 || u > u32::MAX as Value || v > u32::MAX as Value {
                return Err(Error::exec("worklist engine requires u32 vertex ids"));
            }
            self.edges[id].insert(u as u32, v as u32);
        }
        Ok(id)
    }

    /// Edge set of a label.
    pub fn edges_of(&self, label: &str) -> Option<Vec<(Value, Value)>> {
        let id = self.grammar.lookup(label)?;
        let mut out: Vec<(Value, Value)> = self.edges[id]
            .set
            .iter()
            .map(|&(u, v)| (u as Value, v as Value))
            .collect();
        out.sort_unstable();
        Some(out)
    }

    /// Edge count of a label.
    pub fn edge_count(&self, label: &str) -> usize {
        self.grammar
            .lookup(label)
            .map_or(0, |id| self.edges[id].set.len())
    }

    /// Run the worklist to fixpoint.
    pub fn run(&mut self) -> Result<WorklistStats> {
        let mut stats = WorklistStats::default();
        // Seed the worklist with every present edge.
        let mut work: Vec<(LabelId, u32, u32)> = Vec::new();
        for (id, le) in self.edges.iter().enumerate() {
            for &(u, v) in &le.set {
                work.push((id, u, v));
            }
        }
        let mut fresh: Vec<(LabelId, u32, u32)> = Vec::new();
        while let Some((label, u, v)) = work.pop() {
            stats.popped += 1;
            fresh.clear();
            for p in self.grammar.productions() {
                match *p {
                    Production::Copy { dst, src } if src == label => {
                        fresh.push((dst, u, v));
                    }
                    Production::Reverse { dst, src } if src == label => {
                        fresh.push((dst, v, u));
                    }
                    Production::SelfSrc { dst, src } if src == label => {
                        fresh.push((dst, u, u));
                    }
                    Production::SelfDst { dst, src } if src == label => {
                        fresh.push((dst, v, v));
                    }
                    Production::Compose { dst, a, b } => {
                        // This edge as the A part: (u,v):A ∘ (v,w):B.
                        if a == label {
                            if let Some(ws) = self.edges[b].out.get(&v) {
                                for &w in ws {
                                    fresh.push((dst, u, w));
                                }
                            }
                        }
                        // This edge as the B part: (t,u):A ∘ (u,v):B.
                        if b == label {
                            if let Some(ts) = self.edges[a].inn.get(&u) {
                                for &t in ts {
                                    fresh.push((dst, t, v));
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            for &(dst, x, y) in &fresh {
                if self.edges[dst].insert(x, y) {
                    work.push((dst, x, y));
                }
            }
            if let Some(budget) = self.edge_budget {
                stats.edges = self.edges.iter().map(|e| e.set.len()).sum();
                if stats.edges > budget {
                    return Err(Error::exec(format!(
                        "out of memory: {} edges > {budget} budget",
                        stats.edges
                    )));
                }
            }
        }
        stats.edges = self.edges.iter().map(|e| e.set.len()).sum();
        Ok(stats)
    }
}

/// Grammar builders for the benchmark programs expressible as
/// CFL-reachability.
pub mod grammars {
    use super::{Grammar, Production::*};

    /// Transitive closure: `tc ::= arc | tc arc`.
    pub fn tc() -> Grammar {
        let mut g = Grammar::new();
        let arc = g.label("arc");
        let tc = g.label("tc");
        g.add(Copy { dst: tc, src: arc });
        g.add(Compose {
            dst: tc,
            a: tc,
            b: arc,
        });
        g
    }

    /// CSDA: `null ::= nullEdge | null arc`.
    pub fn csda() -> Grammar {
        let mut g = Grammar::new();
        let null_edge = g.label("nullEdge");
        let arc = g.label("arc");
        let null = g.label("null");
        g.add(Copy {
            dst: null,
            src: null_edge,
        });
        g.add(Compose {
            dst: null,
            a: null,
            b: arc,
        });
        g
    }

    /// Andersen's analysis, normalized:
    /// `pt ::= addressOf | assign pt | (load pt) pt | (rev(pt) store) pt`.
    pub fn andersen() -> Grammar {
        let mut g = Grammar::new();
        let address_of = g.label("addressOf");
        let assign = g.label("assign");
        let load = g.label("load");
        let store = g.label("store");
        let pt = g.label("pointsTo");
        let rpt = g.label("_rev_pointsTo");
        let t_load = g.label("_load_pt");
        let t_store = g.label("_rpt_store");
        g.add(Copy {
            dst: pt,
            src: address_of,
        });
        g.add(Compose {
            dst: pt,
            a: assign,
            b: pt,
        });
        g.add(Compose {
            dst: t_load,
            a: load,
            b: pt,
        });
        g.add(Compose {
            dst: pt,
            a: t_load,
            b: pt,
        });
        g.add(Reverse { dst: rpt, src: pt });
        g.add(Compose {
            dst: t_store,
            a: rpt,
            b: store,
        });
        g.add(Compose {
            dst: pt,
            a: t_store,
            b: pt,
        });
        g
    }

    /// CSPA, normalized (vf = valueFlow, ma = memoryAlias, va = valueAlias):
    /// ```text
    /// vf ::= assign | assign ma | vf vf
    /// vf(x,x) ::= assign(x,_) | assign(_,x)
    /// ma ::= (rev(deref) va) deref
    /// ma(x,x) ::= assign(_,x) | assign(x,_)
    /// va ::= rev(vf) vf | (rev(vf) ma) vf
    /// ```
    pub fn cspa() -> Grammar {
        let mut g = Grammar::new();
        let assign = g.label("assign");
        let deref = g.label("dereference");
        let vf = g.label("valueFlow");
        let ma = g.label("memoryAlias");
        let va = g.label("valueAlias");
        let rvf = g.label("_rev_vf");
        let rderef = g.label("_rev_deref");
        let t1 = g.label("_rderef_va");
        let t2 = g.label("_rvf_ma");
        g.add(Copy {
            dst: vf,
            src: assign,
        });
        g.add(Compose {
            dst: vf,
            a: assign,
            b: ma,
        });
        g.add(Compose {
            dst: vf,
            a: vf,
            b: vf,
        });
        g.add(SelfSrc {
            dst: vf,
            src: assign,
        });
        g.add(SelfDst {
            dst: vf,
            src: assign,
        });
        g.add(SelfSrc {
            dst: ma,
            src: assign,
        });
        g.add(SelfDst {
            dst: ma,
            src: assign,
        });
        g.add(Reverse {
            dst: rderef,
            src: deref,
        });
        g.add(Compose {
            dst: t1,
            a: rderef,
            b: va,
        });
        g.add(Compose {
            dst: ma,
            a: t1,
            b: deref,
        });
        g.add(Reverse { dst: rvf, src: vf });
        g.add(Compose {
            dst: va,
            a: rvf,
            b: vf,
        });
        g.add(Compose {
            dst: t2,
            a: rvf,
            b: ma,
        });
        g.add(Compose {
            dst: va,
            a: t2,
            b: vf,
        });
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEngine;
    use recstep_datalog::programs;
    use std::collections::BTreeSet;

    fn rand_edges(n: u64, m: usize, seed: u64) -> Vec<(Value, Value)> {
        let mut state = seed;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        (0..m)
            .map(|_| ((rnd() % n) as Value, (rnd() % n) as Value))
            .collect()
    }

    fn pairs(rows: &std::collections::BTreeSet<Vec<Value>>) -> BTreeSet<(Value, Value)> {
        rows.iter().map(|r| (r[0], r[1])).collect()
    }

    #[test]
    fn tc_matches_naive() {
        let edges = rand_edges(30, 80, 3);
        let mut oracle = NaiveEngine::new();
        oracle.load_edges("arc", &edges);
        oracle.run_source(programs::TC).unwrap();
        let mut w = WorklistEngine::new(grammars::tc());
        w.load("arc", &edges).unwrap();
        let stats = w.run().unwrap();
        let got: BTreeSet<(Value, Value)> = w.edges_of("tc").unwrap().into_iter().collect();
        assert_eq!(got, pairs(oracle.rows("tc").unwrap()));
        assert!(stats.popped >= stats.edges / 2);
    }

    #[test]
    fn csda_matches_naive() {
        let arc: Vec<(Value, Value)> = (0..50).map(|i| (i, i + 1)).collect();
        let seeds = vec![(0, 0), (25, 25)];
        let mut oracle = NaiveEngine::new();
        oracle.load_edges("arc", &arc);
        oracle.load_edges("nullEdge", &seeds);
        oracle.run_source(programs::CSDA).unwrap();
        let mut w = WorklistEngine::new(grammars::csda());
        w.load("arc", &arc).unwrap();
        w.load("nullEdge", &seeds).unwrap();
        w.run().unwrap();
        let got: BTreeSet<(Value, Value)> = w.edges_of("null").unwrap().into_iter().collect();
        assert_eq!(got, pairs(oracle.rows("null").unwrap()));
    }

    #[test]
    fn andersen_matches_naive() {
        let addr = rand_edges(15, 12, 7);
        let assign = rand_edges(15, 10, 8);
        let load = rand_edges(15, 6, 9);
        let store = rand_edges(15, 6, 10);
        let mut oracle = NaiveEngine::new();
        for (name, data) in [
            ("addressOf", &addr),
            ("assign", &assign),
            ("load", &load),
            ("store", &store),
        ] {
            oracle.load_edges(name, data);
        }
        oracle.run_source(programs::ANDERSEN).unwrap();
        let mut w = WorklistEngine::new(grammars::andersen());
        w.load("addressOf", &addr).unwrap();
        w.load("assign", &assign).unwrap();
        w.load("load", &load).unwrap();
        w.load("store", &store).unwrap();
        w.run().unwrap();
        let got: BTreeSet<(Value, Value)> = w.edges_of("pointsTo").unwrap().into_iter().collect();
        assert_eq!(got, pairs(oracle.rows("pointsTo").unwrap()));
    }

    #[test]
    fn cspa_matches_naive() {
        let assign = rand_edges(10, 8, 21);
        let deref = rand_edges(10, 8, 22);
        let mut oracle = NaiveEngine::new();
        oracle.load_edges("assign", &assign);
        oracle.load_edges("dereference", &deref);
        oracle.run_source(programs::CSPA).unwrap();
        let mut w = WorklistEngine::new(grammars::cspa());
        w.load("assign", &assign).unwrap();
        w.load("dereference", &deref).unwrap();
        w.run().unwrap();
        for rel in ["valueFlow", "valueAlias", "memoryAlias"] {
            let got: BTreeSet<(Value, Value)> = w.edges_of(rel).unwrap().into_iter().collect();
            assert_eq!(got, pairs(oracle.rows(rel).unwrap()), "{rel}");
        }
    }

    #[test]
    fn budget_aborts() {
        let edges: Vec<(Value, Value)> = (0..40).map(|i| (i, (i + 1) % 40)).collect();
        let mut w = WorklistEngine::new(grammars::tc());
        w.load("arc", &edges).unwrap();
        w.edge_budget = Some(100);
        assert!(w.run().is_err());
    }

    #[test]
    fn unknown_label_rejected() {
        let mut w = WorklistEngine::new(grammars::tc());
        assert!(w.load("nope", &[(1, 2)]).is_err());
        assert!(w.load("arc", &[(-1, 2)]).is_err());
    }
}
