//! Baseline engines standing in for the systems the paper compares against.
//!
//! Cross-system *shape* (who wins, who runs out of memory, where crossovers
//! fall) comes from each system's evaluation strategy, so this crate
//! reimplements those strategies from scratch (see DESIGN.md §3):
//!
//! * [`naive`] — naïve bottom-up evaluation (full re-derivation every
//!   iteration): the §3.2 baseline and the differential-testing oracle;
//! * [`setbased`] — a compiled-loop-style semi-naïve evaluator over hashed
//!   tuple sets, sequential or rayon-parallel — the Soufflé stand-in
//!   (BigDatalog's strategy is RecStep's generic configuration,
//!   `Config::no_op()`, per DESIGN.md);
//! * [`worklist`] — a Graspan-style edge-at-a-time CFL-reachability engine
//!   over normalized binary grammars;
//! * [`bdd`] — a bddbddb-style engine: a from-scratch BDD package (unique
//!   table, apply cache, exists/rename) evaluating binary-relation Datalog
//!   over Boolean encodings.

pub mod bdd;
pub mod naive;
pub mod setbased;
pub mod worklist;
