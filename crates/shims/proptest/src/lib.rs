//! Offline stand-in for the `proptest` crate (see `crates/shims/README.md`).
//!
//! Implements the subset this repository's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, integer-range /
//! tuple / `collection::vec` / [`Just`] / `prop_oneof!` / `any::<bool>()`
//! strategies, a printable-string strategy for `&str` patterns, and the
//! `prop_assert!`/`prop_assert_eq!` assertion forms.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the case number, and the RNG is seeded deterministically per test name
//! so failures reproduce exactly.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic splitmix64 stream seeded from the test's name.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier (stable across runs).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Run-count configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// Type of the generated values.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Strategy yielding one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Printable-string strategy from a regex-like pattern.
///
/// Supports the form this repository uses (`"\\PC{lo,hi}"`): an optional
/// trailing `{lo,hi}` repetition count; the character class itself is
/// approximated by a printable mix of ASCII and a few multi-byte
/// codepoints (the consumer property is "the parser never panics").
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repetition(self).unwrap_or((0, 32));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        const EXOTIC: [char; 6] = ['λ', 'π', 'é', '→', '丘', '\u{2028}'];
        (0..len)
            .map(|_| {
                if rng.below(16) == 0 {
                    EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
                } else {
                    (0x20 + rng.below(0x5f) as u8) as char
                }
            })
            .collect()
    }
}

fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let (_, counts) = body.rsplit_once('{')?;
    let (lo, hi) = counts.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Box a strategy for [`OneOf`] (used by the `prop_oneof!` expansion).
pub fn boxed<T, S: Strategy<Value = T> + 'static>(s: S) -> Box<dyn Strategy<Value = T>> {
    Box::new(s)
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the whole domain of `T`.
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors of `element` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just, ProptestConfig,
        Strategy,
    };
}

/// Assert a condition inside a property, failing the case (not the
/// process) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Equality assertion inside a property (compares by reference, so owned
/// operands are not consumed).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)*),
                left,
                right
            ));
        }
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::boxed($s)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` block runs
/// `cases` times over freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!("property failed on case {case}: {msg}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3i64..9, flag in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(flag || !flag);
        }

        #[test]
        fn vec_lengths_in_bounds(v in crate::collection::vec((0u32..5, 0i64..3), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            for (a, b) in &v {
                prop_assert!(*a < 5 && *b < 3);
            }
        }

        #[test]
        fn oneof_and_just(tok in prop_oneof![Just("a".to_string()), Just("b".to_string())]) {
            prop_assert!(tok == "a" || tok == "b");
        }

        #[test]
        fn string_pattern_lengths(s in "\\PC{0,12}") {
            prop_assert!(s.chars().count() <= 12, "{s:?}");
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
