//! Offline stand-in for the `crossbeam` crate (see `crates/shims/README.md`).
//! Only `sync::WaitGroup` is provided — the single API this repository uses.

pub mod sync {
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Inner {
        count: Mutex<usize>,
        all_done: Condvar,
    }

    /// Synchronization point that waits until all clones are dropped.
    ///
    /// Semantics match crossbeam's `WaitGroup`: every clone represents one
    /// outstanding unit of work; dropping a clone retires it; [`wait`]
    /// consumes the caller's own handle and blocks until the count is zero.
    ///
    /// [`wait`]: WaitGroup::wait
    pub struct WaitGroup {
        inner: Arc<Inner>,
    }

    impl WaitGroup {
        /// Create a group with one outstanding handle (the returned one).
        pub fn new() -> Self {
            WaitGroup {
                inner: Arc::new(Inner {
                    count: Mutex::new(1),
                    all_done: Condvar::new(),
                }),
            }
        }

        /// Drop this handle and block until every other clone is dropped.
        pub fn wait(self) {
            let inner = Arc::clone(&self.inner);
            drop(self);
            let mut count = inner.count.lock().unwrap_or_else(PoisonError::into_inner);
            while *count > 0 {
                count = inner
                    .all_done
                    .wait(count)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl Default for WaitGroup {
        fn default() -> Self {
            WaitGroup::new()
        }
    }

    impl Clone for WaitGroup {
        fn clone(&self) -> Self {
            *self
                .inner
                .count
                .lock()
                .unwrap_or_else(PoisonError::into_inner) += 1;
            WaitGroup {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl Drop for WaitGroup {
        fn drop(&mut self) {
            let mut count = self
                .inner
                .count
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *count -= 1;
            if *count == 0 {
                self.inner.all_done.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn wait_blocks_until_all_clones_drop() {
            let wg = WaitGroup::new();
            let done = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let wg = wg.clone();
                let done = Arc::clone(&done);
                handles.push(std::thread::spawn(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                    drop(wg);
                }));
            }
            wg.wait();
            assert_eq!(done.load(Ordering::SeqCst), 4);
            for h in handles {
                h.join().unwrap();
            }
        }
    }
}
