//! Offline stand-in for the `rayon` crate (see `crates/shims/README.md`).
//!
//! `par_iter()` returns a wrapper over the *sequential* iterator exposing
//! the rayon adapter names used in this repository (`flat_map_iter`,
//! `filter_map`, `map`, `collect`). Call sites keep rayon's shape and pick
//! up real parallelism again if the genuine crate is substituted; with the
//! shim they simply run single-threaded.

/// Sequential stand-in for a rayon parallel iterator.
pub struct Par<I>(I);

impl<I: Iterator> Par<I> {
    /// rayon's `flat_map_iter`: flat-map through a serial inner iterator.
    pub fn flat_map_iter<U, F>(self, f: F) -> Par<impl Iterator<Item = U::Item>>
    where
        U: IntoIterator,
        F: FnMut(I::Item) -> U,
    {
        Par(self.0.flat_map(f))
    }

    /// Filter and map in one pass.
    pub fn filter_map<U, F>(self, f: F) -> Par<impl Iterator<Item = U>>
    where
        F: FnMut(I::Item) -> Option<U>,
    {
        Par(self.0.filter_map(f))
    }

    /// Map each item.
    pub fn map<U, F>(self, f: F) -> Par<impl Iterator<Item = U>>
    where
        F: FnMut(I::Item) -> U,
    {
        Par(self.0.map(f))
    }

    /// Collect into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
}

/// `.par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'data> {
    /// Item type yielded by reference.
    type Item: 'data;
    /// Borrowing "parallel" iterator (sequential in the shim).
    fn par_iter(&'data self) -> Par<std::slice::Iter<'data, Self::Item>>;
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> Par<std::slice::Iter<'data, T>> {
        Par(self.iter())
    }
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> Par<std::slice::Iter<'data, T>> {
        Par(self.iter())
    }
}

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_match_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let evens: Vec<i32> = v
            .par_iter()
            .filter_map(|&x| (x % 2 == 0).then_some(x))
            .collect();
        assert_eq!(evens, vec![2, 4]);
        let flat: Vec<i32> = v.par_iter().flat_map_iter(|&x| vec![x; 2]).collect();
        assert_eq!(flat.len(), 8);
    }
}
