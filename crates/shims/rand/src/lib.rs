//! Offline stand-in for the `rand` crate, 0.8 API shape (see
//! `crates/shims/README.md`).
//!
//! The generator behind [`rngs::StdRng`] is splitmix64 — statistically fine
//! for synthetic dataset generation, *not* the real StdRng stream: graphs
//! generated under the shim differ from graphs generated under genuine
//! rand with the same seed. Every consumer in this repository compares
//! engines against each other on the *same* generated input, so the
//! stream identity does not matter.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a value distribution (rand's `Standard`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for generators.
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for rand's `StdRng`: a splitmix64 stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w: u64 = rng.gen_range(1u64..=9);
            assert!((1..=9).contains(&w));
            let f: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((0.0..1.0).contains(&f));
            let s: f64 = rng.gen();
            assert!((0.0..1.0).contains(&s));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
