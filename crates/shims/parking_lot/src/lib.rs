//! Offline stand-in for the `parking_lot` crate (see `crates/shims/README.md`).
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API:
//! `lock()` returns the guard directly and a poisoned mutex is recovered
//! instead of surfaced, matching parking_lot's lack of lock poisoning.

use std::ops::{Deref, DerefMut};

/// Mutex with parking_lot's infallible `lock()`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(
            self.0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable usable with [`MutexGuard`] by `&mut` reference.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes the guard; move it out and back in so the
        // caller keeps parking_lot's `&mut guard` calling convention.
        // SAFETY: `inner` is moved out of `guard.0` and a valid replacement
        // is written back before returning; `wait` only returns the same
        // guard (or its poisoned wrapper, unwrapped here), so `guard.0` is
        // never observed in a moved-from state by safe code.
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let inner = self
                .0
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::ptr::write(&mut guard.0, inner);
        }
    }

    /// Block until notified or `deadline` passes, whichever comes first.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(std::time::Instant::now());
        // SAFETY: same move-out/move-back dance as `wait` above.
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let (inner, result) = self
                .0
                .wait_timeout(inner, timeout)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::ptr::write(&mut guard.0, inner);
            WaitTimeoutResult(result.timed_out())
        }
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Result of [`Condvar::wait_until`].
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Reader-writer lock with parking_lot's infallible `read()`/`write()`.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, blocking until no writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(
            self.0
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Acquire exclusive access, blocking until all guards are released.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(
            self.0
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
