//! Property tests of the frontend: total parsing (no panics on arbitrary
//! input), display/parse roundtrips, and stratification invariants.

use proptest::prelude::*;
use recstep_datalog::analyze::analyze;
use recstep_datalog::parser::parse;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The parser is total: any byte soup yields Ok or Err, never a panic.
    #[test]
    fn parser_never_panics(src in "\\PC{0,120}") {
        let _ = parse(&src);
    }

    /// Same for strings biased towards Datalog-ish token soup.
    #[test]
    fn parser_never_panics_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("tc".to_string()),
                Just("arc".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just(":-".to_string()),
                Just(".".to_string()),
                Just("!".to_string()),
                Just("x".to_string()),
                Just("1".to_string()),
                Just("MIN".to_string()),
                Just("+".to_string()),
                Just("<=".to_string()),
                Just("_".to_string()),
            ],
            0..40,
        )
    ) {
        let src = toks.join(" ");
        if let Ok(prog) = parse(&src) {
            // Whatever parses must also be displayable and re-parseable.
            for rule in &prog.rules {
                let rendered = rule.display();
                prop_assert!(parse(&rendered).is_ok(), "re-parse failed: {rendered}");
            }
        }
    }

    /// Stratification invariants on random chain programs: every rule lands
    /// in exactly one stratum, and each body predicate's defining rules are
    /// in the same or an earlier stratum.
    #[test]
    fn stratification_invariants(n_rules in 1usize..8, recursive in any::<bool>()) {
        let mut src = String::new();
        for i in 0..n_rules {
            let body = if i == 0 { "e(x, y)".to_string() } else { format!("r{}(x, y)", i - 1) };
            src.push_str(&format!("r{i}(x, y) :- {body}.\n"));
        }
        if recursive {
            src.push_str(&format!("r0(x, y) :- r{}(x, z), e(z, y).\n", n_rules - 1));
        }
        let analysis = analyze(parse(&src).unwrap()).unwrap();
        let total: usize = analysis.strata.iter().map(|s| s.rules.len()).sum();
        prop_assert_eq!(total, analysis.program.rules.len());
        // Position of each rule's stratum.
        let mut stratum_of = vec![usize::MAX; analysis.program.rules.len()];
        for (si, s) in analysis.strata.iter().enumerate() {
            for &r in &s.rules {
                prop_assert_eq!(stratum_of[r], usize::MAX, "rule in two strata");
                stratum_of[r] = si;
            }
        }
        for (ri, rule) in analysis.program.rules.iter().enumerate() {
            for atom in rule.positive_atoms() {
                for (di, def) in analysis.program.rules.iter().enumerate() {
                    if def.head.pred == atom.pred {
                        prop_assert!(
                            stratum_of[di] <= stratum_of[ri],
                            "definition of {} later than use", atom.pred
                        );
                    }
                }
            }
        }
        if recursive {
            prop_assert!(analysis.strata.iter().any(|s| s.recursive));
        } else {
            prop_assert!(analysis.strata.iter().all(|s| !s.recursive));
        }
    }
}
