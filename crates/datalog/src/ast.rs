//! Abstract syntax of the Datalog dialect (paper §3).
//!
//! The dialect is pure Datalog extended with stratified negation (`!atom`),
//! head aggregation (`MIN`/`MAX`/`SUM`/`COUNT`/`AVG`, recursive or not),
//! integer arithmetic (`d1 + d2`) and comparisons (`x != y`, `d < 10`).

use recstep_common::lang::{AggFunc, CmpOp};
use recstep_common::Value;

/// Arithmetic expression over rule variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AExpr {
    /// Variable reference.
    Var(String),
    /// Integer literal.
    Const(Value),
    /// Addition.
    Add(Box<AExpr>, Box<AExpr>),
    /// Subtraction.
    Sub(Box<AExpr>, Box<AExpr>),
    /// Multiplication.
    Mul(Box<AExpr>, Box<AExpr>),
}

impl AExpr {
    /// Collect every variable mentioned, in order of first occurrence.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            AExpr::Var(v) => {
                if !out.iter().any(|o| o == v) {
                    out.push(v.clone());
                }
            }
            AExpr::Const(_) => {}
            AExpr::Add(a, b) | AExpr::Sub(a, b) | AExpr::Mul(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Render in surface syntax.
    pub fn display(&self) -> String {
        match self {
            AExpr::Var(v) => v.clone(),
            AExpr::Const(c) => c.to_string(),
            AExpr::Add(a, b) => format!("{} + {}", a.display(), b.display()),
            AExpr::Sub(a, b) => format!("{} - {}", a.display(), b.display()),
            AExpr::Mul(a, b) => format!("{} * {}", a.display(), b.display()),
        }
    }
}

/// A term in a rule head.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HeadTerm {
    /// A plain expression (variable, constant or arithmetic).
    Plain(AExpr),
    /// An aggregate `FUNC(expr)`.
    Agg {
        /// The aggregation operator.
        func: AggFunc,
        /// Its argument.
        expr: AExpr,
    },
}

impl HeadTerm {
    /// Render in surface syntax.
    pub fn display(&self) -> String {
        match self {
            HeadTerm::Plain(e) => e.display(),
            HeadTerm::Agg { func, expr } => format!("{}({})", func.sql(), expr.display()),
        }
    }
}

/// A term in a body atom: a variable or a constant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BodyTerm {
    /// Variable (anonymous `_` becomes a unique generated name).
    Var(String),
    /// Integer constant.
    Const(Value),
}

impl BodyTerm {
    /// Render in surface syntax.
    pub fn display(&self) -> String {
        match self {
            BodyTerm::Var(v) => v.clone(),
            BodyTerm::Const(c) => c.to_string(),
        }
    }
}

/// A predicate applied to terms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom<T> {
    /// Relation name.
    pub pred: String,
    /// Argument terms.
    pub terms: Vec<T>,
}

impl<T> Atom<T> {
    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }
}

/// One literal of a rule body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Literal {
    /// Positive atom.
    Pos(Atom<BodyTerm>),
    /// Negated atom (stratified negation, `!atom`).
    Neg(Atom<BodyTerm>),
    /// Comparison between arithmetic expressions.
    Cmp {
        /// Left operand.
        lhs: AExpr,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        rhs: AExpr,
    },
}

/// A Datalog rule `head :- body.`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// Head atom (its terms may aggregate).
    pub head: Atom<HeadTerm>,
    /// Body literals (empty for facts promoted to rules).
    pub body: Vec<Literal>,
}

impl Rule {
    /// Positive body atoms, in order.
    pub fn positive_atoms(&self) -> impl Iterator<Item = &Atom<BodyTerm>> {
        self.body.iter().filter_map(|l| match l {
            Literal::Pos(a) => Some(a),
            _ => None,
        })
    }

    /// Negated body atoms, in order.
    pub fn negated_atoms(&self) -> impl Iterator<Item = &Atom<BodyTerm>> {
        self.body.iter().filter_map(|l| match l {
            Literal::Neg(a) => Some(a),
            _ => None,
        })
    }

    /// True if any head term aggregates.
    pub fn has_aggregation(&self) -> bool {
        self.head
            .terms
            .iter()
            .any(|t| matches!(t, HeadTerm::Agg { .. }))
    }

    /// Render in surface syntax.
    pub fn display(&self) -> String {
        let head = format!(
            "{}({})",
            self.head.pred,
            self.head
                .terms
                .iter()
                .map(HeadTerm::display)
                .collect::<Vec<_>>()
                .join(", ")
        );
        if self.body.is_empty() {
            return format!("{head}.");
        }
        let body = self
            .body
            .iter()
            .map(|l| match l {
                Literal::Pos(a) => format!(
                    "{}({})",
                    a.pred,
                    a.terms
                        .iter()
                        .map(BodyTerm::display)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                Literal::Neg(a) => format!(
                    "!{}({})",
                    a.pred,
                    a.terms
                        .iter()
                        .map(BodyTerm::display)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                Literal::Cmp { lhs, op, rhs } => {
                    format!("{} {} {}", lhs.display(), op_src(*op), rhs.display())
                }
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!("{head} :- {body}.")
    }
}

fn op_src(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

/// A parsed Datalog program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Rules with non-empty bodies (plus any non-ground facts).
    pub rules: Vec<Rule>,
    /// Ground facts stated inline (`arc(1, 2).`).
    pub facts: Vec<(String, Vec<Value>)>,
    /// Relations named in `.input` directives.
    pub inputs: Vec<String>,
    /// Relations named in `.output` directives.
    pub outputs: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_vars_dedups_in_order() {
        let e = AExpr::Add(
            Box::new(AExpr::Var("x".into())),
            Box::new(AExpr::Mul(
                Box::new(AExpr::Var("y".into())),
                Box::new(AExpr::Var("x".into())),
            )),
        );
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn rule_display_roundtrips_shape() {
        let rule = Rule {
            head: Atom {
                pred: "tc".into(),
                terms: vec![
                    HeadTerm::Plain(AExpr::Var("x".into())),
                    HeadTerm::Plain(AExpr::Var("y".into())),
                ],
            },
            body: vec![
                Literal::Pos(Atom {
                    pred: "tc".into(),
                    terms: vec![BodyTerm::Var("x".into()), BodyTerm::Var("z".into())],
                }),
                Literal::Pos(Atom {
                    pred: "arc".into(),
                    terms: vec![BodyTerm::Var("z".into()), BodyTerm::Var("y".into())],
                }),
            ],
        };
        assert_eq!(rule.display(), "tc(x, y) :- tc(x, z), arc(z, y).");
        assert!(!rule.has_aggregation());
        assert_eq!(rule.positive_atoms().count(), 2);
    }

    #[test]
    fn agg_head_display() {
        let rule = Rule {
            head: Atom {
                pred: "cc3".into(),
                terms: vec![
                    HeadTerm::Plain(AExpr::Var("y".into())),
                    HeadTerm::Agg {
                        func: AggFunc::Min,
                        expr: AExpr::Var("z".into()),
                    },
                ],
            },
            body: vec![],
        };
        assert!(rule.has_aggregation());
        assert_eq!(rule.display(), "cc3(y, MIN(z)).");
    }
}
