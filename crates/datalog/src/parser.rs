//! Recursive-descent parser for the Datalog dialect.
//!
//! Grammar (informally):
//!
//! ```text
//! program   := (directive | clause)*
//! directive := '.input' IDENT | '.output' IDENT
//! clause    := atom '.'                      (fact, if all terms constant)
//!            | atom ':-' literal (',' literal)* '.'
//! literal   := '!' atom | atom | aexpr cmp aexpr
//! atom      := IDENT '(' term (',' term)* ')'
//! term      := AGG '(' aexpr ')'             (heads only)
//!            | aexpr
//! aexpr     := product (('+'|'-') product)*
//! product   := primary ('*' primary)*
//! primary   := INT | IDENT | '_' | '-' primary | '(' aexpr ')'
//! cmp       := '=' | '!=' | '<' | '<=' | '>' | '>='
//! ```
//!
//! Variables are identifiers in term position; `_` is an anonymous variable
//! (each occurrence unique). An aggregate name (`MIN`, …) followed by `(` in
//! a head term position parses as aggregation.

use recstep_common::lang::{AggFunc, CmpOp};
use recstep_common::{Error, Result, Value};

use crate::ast::{AExpr, Atom, BodyTerm, HeadTerm, Literal, Program, Rule};
use crate::lexer::{lex, Spanned, Tok};

/// Parse a program source.
pub fn parse(src: &str) -> Result<Program> {
    Parser::new(lex(src)?).program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    anon: usize,
}

impl Parser {
    fn new(toks: Vec<Spanned>) -> Self {
        Parser {
            toks,
            pos: 0,
            anon: 0,
        }
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        let s = &self.toks[self.pos];
        Error::Parse {
            line: s.line,
            col: s.col,
            msg: msg.into(),
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<()> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn fresh_anon(&mut self) -> String {
        self.anon += 1;
        format!("_anon{}", self.anon)
    }

    fn program(&mut self) -> Result<Program> {
        let mut prog = Program::default();
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Directive(kind) => {
                    self.bump();
                    let name = self.ident("relation name after directive")?;
                    if kind == "input" {
                        prog.inputs.push(name);
                    } else {
                        prog.outputs.push(name);
                    }
                }
                _ => self.clause(&mut prog)?,
            }
        }
        Ok(prog)
    }

    fn clause(&mut self, prog: &mut Program) -> Result<()> {
        let head = self.head_atom()?;
        match self.peek() {
            Tok::Dot => {
                self.bump();
                // A bodyless clause must be a ground fact.
                let mut vals = Vec::with_capacity(head.terms.len());
                for t in &head.terms {
                    match t {
                        HeadTerm::Plain(AExpr::Const(c)) => vals.push(*c),
                        _ => {
                            return Err(self.err(format!(
                                "fact {}(...) must be ground (constants only)",
                                head.pred
                            )))
                        }
                    }
                }
                prog.facts.push((head.pred, vals));
                Ok(())
            }
            Tok::Turnstile => {
                self.bump();
                let mut body = vec![self.literal()?];
                while *self.peek() == Tok::Comma {
                    self.bump();
                    body.push(self.literal()?);
                }
                self.expect(Tok::Dot, "'.' at end of rule")?;
                prog.rules.push(Rule { head, body });
                Ok(())
            }
            _ => Err(self.err("expected '.' or ':-' after head atom")),
        }
    }

    fn head_atom(&mut self) -> Result<Atom<HeadTerm>> {
        let pred = self.ident("relation name")?;
        self.expect(Tok::LParen, "'('")?;
        let mut terms = Vec::new();
        loop {
            terms.push(self.head_term()?);
            match self.bump() {
                Tok::Comma => continue,
                Tok::RParen => break,
                _ => return Err(self.err("expected ',' or ')' in head atom")),
            }
        }
        Ok(Atom { pred, terms })
    }

    fn head_term(&mut self) -> Result<HeadTerm> {
        // Aggregate: IDENT in the agg set followed by '('.
        if let Tok::Ident(name) = self.peek() {
            if let Some(func) = AggFunc::parse(name) {
                if *self.peek2() == Tok::LParen {
                    self.bump(); // name
                    self.bump(); // (
                    let expr = self.aexpr()?;
                    self.expect(Tok::RParen, "')' closing aggregate")?;
                    return Ok(HeadTerm::Agg { func, expr });
                }
            }
        }
        Ok(HeadTerm::Plain(self.aexpr()?))
    }

    fn literal(&mut self) -> Result<Literal> {
        if *self.peek() == Tok::Bang {
            self.bump();
            return Ok(Literal::Neg(self.body_atom()?));
        }
        // Atom iff IDENT '(' — otherwise a comparison.
        if matches!(self.peek(), Tok::Ident(_)) && *self.peek2() == Tok::LParen {
            return Ok(Literal::Pos(self.body_atom()?));
        }
        let lhs = self.aexpr()?;
        let op = match self.bump() {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            _ => {
                self.pos -= 1;
                return Err(self.err("expected comparison operator"));
            }
        };
        let rhs = self.aexpr()?;
        Ok(Literal::Cmp { lhs, op, rhs })
    }

    fn body_atom(&mut self) -> Result<Atom<BodyTerm>> {
        let pred = self.ident("relation name")?;
        self.expect(Tok::LParen, "'('")?;
        let mut terms = Vec::new();
        loop {
            let term = match self.peek().clone() {
                Tok::Ident(v) => {
                    self.bump();
                    BodyTerm::Var(v)
                }
                Tok::Underscore => {
                    self.bump();
                    BodyTerm::Var(self.fresh_anon())
                }
                Tok::Int(v) => {
                    self.bump();
                    BodyTerm::Const(v)
                }
                Tok::Minus => {
                    self.bump();
                    match self.bump() {
                        Tok::Int(v) => BodyTerm::Const(-v),
                        _ => return Err(self.err("expected integer after '-'")),
                    }
                }
                other => return Err(self.err(format!("expected term in atom, found {other:?}"))),
            };
            terms.push(term);
            match self.bump() {
                Tok::Comma => continue,
                Tok::RParen => break,
                _ => return Err(self.err("expected ',' or ')' in atom")),
            }
        }
        Ok(Atom { pred, terms })
    }

    fn aexpr(&mut self) -> Result<AExpr> {
        let mut lhs = self.product()?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    lhs = AExpr::Add(Box::new(lhs), Box::new(self.product()?));
                }
                Tok::Minus => {
                    self.bump();
                    lhs = AExpr::Sub(Box::new(lhs), Box::new(self.product()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn product(&mut self) -> Result<AExpr> {
        let mut lhs = self.primary()?;
        while *self.peek() == Tok::Star {
            self.bump();
            lhs = AExpr::Mul(Box::new(lhs), Box::new(self.primary()?));
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<AExpr> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(AExpr::Const(v))
            }
            Tok::Ident(v) => {
                self.bump();
                Ok(AExpr::Var(v))
            }
            Tok::Underscore => {
                self.bump();
                Ok(AExpr::Var(self.fresh_anon()))
            }
            Tok::Minus => {
                self.bump();
                let inner = self.primary()?;
                Ok(match inner {
                    AExpr::Const(c) => AExpr::Const(-c),
                    e => AExpr::Sub(Box::new(AExpr::Const(0)), Box::new(e)),
                })
            }
            Tok::LParen => {
                self.bump();
                let e = self.aexpr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parse a single value row file format helper: whitespace-separated
/// integers, one fact per line (used by examples to load EDBs).
pub fn parse_fact_line(line: &str) -> Option<Vec<Value>> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with("//") {
        return None;
    }
    trimmed
        .split([' ', '\t', ','])
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<Value>().ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_tc() {
        let p = parse("tc(x, y) :- arc(x, y).\ntc(x, y) :- tc(x, z), arc(z, y).").unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[1].display(), "tc(x, y) :- tc(x, z), arc(z, y).");
    }

    #[test]
    fn parse_facts_and_directives() {
        let p = parse(".input arc\n.output tc\narc(1, 2). arc(2, -3).").unwrap();
        assert_eq!(p.inputs, vec!["arc"]);
        assert_eq!(p.outputs, vec!["tc"]);
        assert_eq!(
            p.facts,
            vec![
                ("arc".to_string(), vec![1, 2]),
                ("arc".to_string(), vec![2, -3])
            ]
        );
    }

    #[test]
    fn parse_negation() {
        let p = parse("ntc(x, y) :- node(x), node(y), !tc(x, y).").unwrap();
        let r = &p.rules[0];
        assert_eq!(r.positive_atoms().count(), 2);
        assert_eq!(r.negated_atoms().count(), 1);
    }

    #[test]
    fn parse_aggregation_and_arith() {
        let p = parse("sssp2(y, MIN(d1 + d2)) :- sssp2(x, d1), arc(x, y, d2).").unwrap();
        let r = &p.rules[0];
        assert!(r.has_aggregation());
        match &r.head.terms[1] {
            HeadTerm::Agg { func, expr } => {
                assert_eq!(*func, AggFunc::Min);
                assert_eq!(expr.display(), "d1 + d2");
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn parse_comparison_literals() {
        let p = parse("sg(x, y) :- arc(p, x), arc(p, y), x != y.").unwrap();
        match &p.rules[0].body[2] {
            Literal::Cmp { op, .. } => assert_eq!(*op, CmpOp::Ne),
            other => panic!("expected comparison, got {other:?}"),
        }
    }

    #[test]
    fn anonymous_vars_are_unique() {
        let p = parse("cc3(x, MIN(x)) :- arc(x, _).\nr(x) :- s(_, _), t(x).").unwrap();
        let atoms: Vec<_> = p.rules[1].positive_atoms().collect();
        match (&atoms[0].terms[0], &atoms[0].terms[1]) {
            (BodyTerm::Var(a), BodyTerm::Var(b)) => assert_ne!(a, b),
            other => panic!("expected vars, got {other:?}"),
        }
    }

    #[test]
    fn min_as_plain_relation_name_still_parses() {
        // An aggregate name NOT followed by '(' is an ordinary variable.
        let p = parse("r(min) :- s(min).").unwrap();
        assert_eq!(p.rules[0].display(), "r(min) :- s(min).");
    }

    #[test]
    fn negative_constants_in_atoms_and_exprs() {
        let p = parse("r(x) :- s(x, -5), x > -2.").unwrap();
        let atom = p.rules[0].positive_atoms().next().unwrap();
        assert_eq!(atom.terms[1], BodyTerm::Const(-5));
        match &p.rules[0].body[1] {
            Literal::Cmp { rhs, .. } => assert_eq!(*rhs, AExpr::Const(-2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("tc(x, y :- arc(x, y).").is_err());
        assert!(parse("tc(x, y).").is_err()); // non-ground fact
        assert!(parse("tc(x, y) :- .").is_err());
        assert!(parse("tc(x, y) :- arc(x, y)").is_err()); // missing dot
    }

    #[test]
    fn operator_precedence() {
        let p = parse("r(x + y * 2) :- s(x, y).").unwrap();
        match &p.rules[0].head.terms[0] {
            HeadTerm::Plain(AExpr::Add(_, rhs)) => {
                assert!(matches!(**rhs, AExpr::Mul(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fact_line_parsing() {
        assert_eq!(parse_fact_line("1 2\t3"), Some(vec![1, 2, 3]));
        assert_eq!(parse_fact_line("4,5"), Some(vec![4, 5]));
        assert_eq!(parse_fact_line("# comment"), None);
        assert_eq!(parse_fact_line(""), None);
        assert_eq!(parse_fact_line("x y"), None);
    }
}
