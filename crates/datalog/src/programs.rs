//! The benchmark Datalog programs of the paper (§6.2, Table 3), as
//! canonical sources shared by tests, examples and the bench harness.

/// Transitive closure (Example 1).
pub const TC: &str = "\
tc(x, y) :- arc(x, y).
tc(x, y) :- tc(x, z), arc(z, y).
";

/// Same generation (§5.3).
pub const SG: &str = "\
sg(x, y) :- arc(p, x), arc(p, y), x != y.
sg(x, y) :- arc(a, x), sg(a, b), arc(b, y).
";

/// Reachability from the `id` seed set (§6.2).
pub const REACH: &str = "\
reach(y) :- id(y).
reach(y) :- reach(x), arc(x, y).
";

/// Connected components via iterated label propagation (§6.2).
pub const CC: &str = "\
cc3(x, MIN(x)) :- arc(x, _).
cc3(y, MIN(z)) :- cc3(x, z), arc(x, y).
cc2(x, MIN(y)) :- cc3(x, y).
cc(x) :- cc2(_, x).
";

/// Single-source shortest path over weighted arcs (§6.2).
pub const SSSP: &str = "\
sssp2(y, MIN(0)) :- id(y).
sssp2(y, MIN(d1 + d2)) :- sssp2(x, d1), arc(x, y, d2).
sssp(x, MIN(d)) :- sssp2(x, d).
";

/// Andersen's points-to analysis (§6.2).
pub const ANDERSEN: &str = "\
pointsTo(y, x) :- addressOf(y, x).
pointsTo(y, x) :- assign(y, z), pointsTo(z, x).
pointsTo(y, w) :- load(y, x), pointsTo(x, z), pointsTo(z, w).
pointsTo(z, w) :- store(y, x), pointsTo(y, z), pointsTo(x, w).
";

/// Context-sensitive points-to analysis (§6.2; context via method cloning,
/// so contexts live in the data).
pub const CSPA: &str = "\
valueFlow(y, x) :- assign(y, x).
valueFlow(x, y) :- assign(x, z), memoryAlias(z, y).
valueFlow(x, y) :- valueFlow(x, z), valueFlow(z, y).
memoryAlias(x, w) :- dereference(y, x), valueAlias(y, z), dereference(z, w).
valueAlias(x, y) :- valueFlow(z, x), valueFlow(z, y).
valueAlias(x, y) :- valueFlow(z, x), memoryAlias(z, w), valueFlow(w, y).
valueFlow(x, x) :- assign(x, y).
valueFlow(x, x) :- assign(y, x).
memoryAlias(x, x) :- assign(y, x).
memoryAlias(x, x) :- assign(x, y).
";

/// Context-sensitive dataflow analysis (§6.2; consumes CSPA results).
pub const CSDA: &str = "\
null(x, y) :- nullEdge(x, y).
null(x, y) :- null(x, w), arc(w, y).
";

/// Complement of transitive closure (Example 2 — stratified negation).
pub const NTC: &str = "\
tc(x, y) :- arc(x, y).
tc(x, y) :- tc(x, z), arc(z, y).
node(x) :- arc(x, y).
node(y) :- arc(x, y).
ntc(x, y) :- node(x), node(y), !tc(x, y).
";

/// TC plus per-vertex reachability counts (§3.3's aggregation example).
pub const GTC: &str = "\
tc(x, y) :- arc(x, y).
tc(x, y) :- tc(x, z), arc(z, y).
gtc(x, COUNT(y)) :- tc(x, y).
";

/// Triangle enumeration — the canonical cyclic body, where a binary plan
/// materializes every 2-path and the worst-case optimal plan does not.
pub const TRIANGLE: &str = "\
triangle(x, y, z) :- arc(x, y), arc(y, z), arc(x, z).
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::parser::parse;

    #[test]
    fn every_benchmark_program_parses_and_analyzes() {
        for (name, src) in [
            ("TC", TC),
            ("SG", SG),
            ("REACH", REACH),
            ("CC", CC),
            ("SSSP", SSSP),
            ("ANDERSEN", ANDERSEN),
            ("CSPA", CSPA),
            ("CSDA", CSDA),
            ("NTC", NTC),
            ("GTC", GTC),
            ("TRIANGLE", TRIANGLE),
        ] {
            let prog = parse(src).unwrap_or_else(|e| panic!("{name} parse: {e}"));
            analyze(prog).unwrap_or_else(|e| panic!("{name} analyze: {e}"));
        }
    }

    #[test]
    fn sssp_head_uses_arithmetic_aggregate() {
        let p = parse(SSSP).unwrap();
        assert!(p.rules[1].has_aggregation());
    }
}
