//! SQL rendering of compiled plans — the text RecStep would send to
//! QuickStep, reproducing Figure 4's two translation styles.
//!
//! The engine itself executes logical plans directly (see DESIGN.md's
//! substitution table); this module exists because the paper's interface to
//! the backend *is* SQL, and the UIE-vs-IIE contrast (Figure 4) is clearest
//! in that surface form.

use recstep_common::lang::{Expr, Predicate};

use crate::plan::{AtomVersion, CompiledIdb, SubQuery};

/// Render the unified-IDB-evaluation (UIE) query for one IDB: a single
/// `INSERT … SELECT … UNION ALL …` (paper Figure 4, right).
pub fn render_uie(idb: &CompiledIdb) -> String {
    let mut out = String::new();
    out.push_str(&format!("INSERT INTO {}_mDelta\n", idb.rel));
    let selects: Vec<String> = idb
        .subqueries
        .iter()
        .map(|sq| indent(&render_select(sq), 4))
        .collect();
    out.push_str(&selects.join("\n        UNION ALL\n"));
    out.push(';');
    out
}

/// Render the individual-IDB-evaluation queries for one IDB: one `INSERT`
/// per subquery into temporary tables, plus the merging `UNION ALL`
/// (paper Figure 4, left).
pub fn render_iie(idb: &CompiledIdb) -> String {
    let mut out = String::new();
    for (i, sq) in idb.subqueries.iter().enumerate() {
        out.push_str(&format!("INSERT INTO {}_tmp_mDelta{}\n", idb.rel, i));
        out.push_str(&indent(&render_select(sq), 4));
        out.push_str(";\n");
    }
    out.push_str(&format!("INSERT INTO {}_mDelta\n", idb.rel));
    let merges: Vec<String> = (0..idb.subqueries.len())
        .map(|i| format!("    SELECT * FROM {}_tmp_mDelta{}", idb.rel, i))
        .collect();
    out.push_str(&merges.join("\n        UNION ALL\n"));
    out.push(';');
    out
}

/// Render one subquery as a `SELECT`.
pub fn render_select(sq: &SubQuery) -> String {
    // Flattened column index -> "tN.cK".
    let mut col_names = Vec::with_capacity(sq.width);
    for (ti, scan) in sq.scans.iter().enumerate() {
        for c in 0..scan.arity {
            col_names.push(format!("t{ti}.c{c}"));
        }
    }
    let offsets: Vec<usize> = sq
        .scans
        .iter()
        .scan(0usize, |acc, s| {
            let off = *acc;
            *acc += s.arity;
            Some(off)
        })
        .collect();

    let select_list: Vec<String> = sq
        .head_exprs
        .iter()
        .enumerate()
        .map(|(i, e)| format!("{} AS c{i}", render_expr(e, &col_names)))
        .collect();

    let from_list: Vec<String> = sq
        .scans
        .iter()
        .enumerate()
        .map(|(ti, s)| format!("{} AS t{ti}", table_name(&s.rel, s.version)))
        .collect();

    let mut conds: Vec<String> = Vec::new();
    for (ji, join) in sq.joins.iter().enumerate() {
        let right_scan = ji + 1;
        for (lk, rk) in join.left_keys.iter().zip(&join.right_keys) {
            conds.push(format!("{} = t{right_scan}.c{rk}", col_names[*lk]));
        }
    }
    for (ti, scan) in sq.scans.iter().enumerate() {
        for f in &scan.filters {
            conds.push(render_pred_local(f, ti));
        }
        let _ = offsets[ti];
    }
    for p in &sq.residual {
        conds.push(render_pred(p, &col_names));
    }
    for neg in &sq.negations {
        let mut inner: Vec<String> = neg
            .left_keys
            .iter()
            .zip(&neg.right_keys)
            .map(|(lk, rk)| format!("n.c{rk} = {}", col_names[*lk]))
            .collect();
        for f in &neg.filters {
            inner.push(render_pred_alias(f, "n"));
        }
        conds.push(format!(
            "NOT EXISTS (SELECT 1 FROM {} AS n WHERE {})",
            neg.rel,
            inner.join(" AND ")
        ));
    }

    let mut sql = format!(
        "SELECT {}\nFROM {}",
        select_list.join(", "),
        from_list.join(", ")
    );
    if !conds.is_empty() {
        sql.push_str(&format!("\nWHERE {}", conds.join(" AND ")));
    }
    sql
}

fn table_name(rel: &str, version: AtomVersion) -> String {
    match version {
        AtomVersion::Base | AtomVersion::Full => rel.to_string(),
        AtomVersion::Delta => format!("{rel}_mDelta"),
        AtomVersion::Old => format!("{rel}_old"),
    }
}

fn render_expr(e: &Expr, cols: &[String]) -> String {
    match e {
        Expr::Col(i) => cols[*i].clone(),
        Expr::Const(c) => c.to_string(),
        Expr::Add(a, b) => format!("{} + {}", render_expr(a, cols), render_expr(b, cols)),
        Expr::Sub(a, b) => format!("{} - {}", render_expr(a, cols), render_expr(b, cols)),
        Expr::Mul(a, b) => format!("{} * {}", render_expr(a, cols), render_expr(b, cols)),
    }
}

fn render_pred(p: &Predicate, cols: &[String]) -> String {
    format!(
        "{} {} {}",
        render_expr(&p.lhs, cols),
        p.op.sql(),
        render_expr(&p.rhs, cols)
    )
}

/// Render a scan-local predicate with columns addressed as `t{ti}.cN`.
fn render_pred_local(p: &Predicate, ti: usize) -> String {
    render_pred_alias_inner(p, &format!("t{ti}"))
}

fn render_pred_alias(p: &Predicate, alias: &str) -> String {
    render_pred_alias_inner(p, alias)
}

fn render_pred_alias_inner(p: &Predicate, alias: &str) -> String {
    fn rec(e: &Expr, alias: &str) -> String {
        match e {
            Expr::Col(i) => format!("{alias}.c{i}"),
            Expr::Const(c) => c.to_string(),
            Expr::Add(a, b) => format!("{} + {}", rec(a, alias), rec(b, alias)),
            Expr::Sub(a, b) => format!("{} - {}", rec(a, alias), rec(b, alias)),
            Expr::Mul(a, b) => format!("{} * {}", rec(a, alias), rec(b, alias)),
        }
    }
    format!(
        "{} {} {}",
        rec(&p.lhs, alias),
        p.op.sql(),
        rec(&p.rhs, alias)
    )
}

fn indent(s: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    s.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::parser::parse;
    use crate::plan::compile;

    fn andersen_recursive_idb() -> CompiledIdb {
        let p = compile(&analyze(parse(crate::programs::ANDERSEN).unwrap()).unwrap()).unwrap();
        p.strata
            .iter()
            .find(|s| s.recursive)
            .unwrap()
            .idbs
            .iter()
            .find(|i| i.rel == "pointsTo")
            .unwrap()
            .clone()
    }

    #[test]
    fn uie_is_one_insert_with_union_all() {
        let idb = andersen_recursive_idb();
        let sql = render_uie(&idb);
        assert_eq!(sql.matches("INSERT INTO").count(), 1);
        assert!(sql.starts_with("INSERT INTO pointsTo_mDelta"));
        // 5 subqueries → 4 UNION ALLs.
        assert_eq!(sql.matches("UNION ALL").count(), idb.subqueries.len() - 1);
        assert!(sql.contains("pointsTo_mDelta AS"));
        assert!(sql.ends_with(';'));
    }

    #[test]
    fn iie_uses_temp_tables_then_merges() {
        let idb = andersen_recursive_idb();
        let sql = render_iie(&idb);
        // One INSERT per subquery plus the merge.
        assert_eq!(sql.matches("INSERT INTO").count(), idb.subqueries.len() + 1);
        assert!(sql.contains("pointsTo_tmp_mDelta0"));
        assert!(sql.contains("SELECT * FROM pointsTo_tmp_mDelta0"));
    }

    #[test]
    fn select_renders_join_conditions_and_versions() {
        let p = compile(&analyze(parse(crate::programs::TC).unwrap()).unwrap()).unwrap();
        let rec = &p.strata[1].idbs[0];
        let sql = render_select(&rec.subqueries[0]);
        assert!(sql.contains("FROM tc_mDelta AS t0, arc AS t1"), "{sql}");
        assert!(sql.contains("WHERE t0.c1 = t1.c0"), "{sql}");
        assert!(sql.contains("SELECT t0.c0 AS c0, t1.c1 AS c1"), "{sql}");
    }

    #[test]
    fn old_version_and_residual_render() {
        let p = compile(&analyze(parse(crate::programs::SG).unwrap()).unwrap()).unwrap();
        let rec = p.strata.iter().find(|s| s.recursive).unwrap();
        let sql = render_uie(&rec.idbs[0]);
        assert!(sql.contains("sg_mDelta AS"), "{sql}");
        // Seed rule's x != y.
        let seed_sql = render_select(&p.strata[0].idbs[0].subqueries[0]);
        assert!(seed_sql.contains("t0.c1 <> t1.c1"), "{seed_sql}");
    }

    #[test]
    fn negation_renders_not_exists() {
        let p = compile(&analyze(parse(crate::programs::NTC).unwrap()).unwrap()).unwrap();
        let ntc = p
            .strata
            .iter()
            .flat_map(|s| &s.idbs)
            .find(|i| i.rel == "ntc")
            .unwrap();
        let sql = render_select(&ntc.subqueries[0]);
        assert!(
            sql.contains("NOT EXISTS (SELECT 1 FROM tc AS n WHERE"),
            "{sql}"
        );
    }

    #[test]
    fn constant_filters_render() {
        let p = compile(&analyze(parse("r(x) :- s(x, 5).").unwrap()).unwrap()).unwrap();
        let sql = render_select(&p.strata[0].idbs[0].subqueries[0]);
        assert!(sql.contains("t0.c1 = 5"), "{sql}");
    }
}
