//! The rule analyzer (paper §4): IDB/EDB identification, safety and
//! syntactic checks, dependency graph and stratification.
//!
//! Stratification follows the paper exactly: the dependency graph has one
//! vertex per *rule* and an edge `(r, r')` whenever the head of `r` appears
//! in the body of `r'`; strata are the strongly connected components in
//! topological order (§3.1). Stratified negation additionally requires every
//! negated predicate to be fully defined in a strictly lower stratum (§3.3),
//! and recursive aggregation is restricted to the monotonic `MIN`/`MAX`
//! fragment over linear rules (§3.3 assumes convergent programs; this is the
//! checkable subset our engine evaluates, the same envelope BigDatalog's
//! monotonic aggregates support).

use recstep_common::hash::{FxHashMap, FxHashSet};
use recstep_common::lang::AggFunc;
use recstep_common::{Error, Result};

use crate::ast::{AExpr, BodyTerm, HeadTerm, Literal, Program, Rule};

/// Information about one predicate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredInfo {
    /// Predicate (relation) name.
    pub name: String,
    /// Arity (consistent across all uses; verified).
    pub arity: usize,
    /// True when the predicate appears in some rule head.
    pub is_idb: bool,
    /// Aggregate signature of head terms (None per position if plain);
    /// empty for EDBs.
    pub agg_sig: Vec<Option<AggFunc>>,
}

/// One stratum: a strongly connected component of the rule dependency graph.
#[derive(Clone, Debug)]
pub struct Stratum {
    /// Indices into `Analysis::program.rules`, in original program order.
    pub rules: Vec<usize>,
    /// Head predicates of this stratum's rules (deduplicated).
    pub idbs: Vec<String>,
    /// True when the stratum needs fixpoint iteration (SCC with a cycle).
    pub recursive: bool,
}

/// Output of the rule analyzer.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The analyzed program.
    pub program: Program,
    /// All predicates, in first-appearance order.
    pub preds: Vec<PredInfo>,
    /// Strata in evaluation (topological) order.
    pub strata: Vec<Stratum>,
}

impl Analysis {
    /// Look up predicate info by name.
    pub fn pred(&self, name: &str) -> Option<&PredInfo> {
        self.preds.iter().find(|p| p.name == name)
    }

    /// Names of EDB predicates (inputs).
    pub fn edbs(&self) -> impl Iterator<Item = &PredInfo> {
        self.preds.iter().filter(|p| !p.is_idb)
    }

    /// Names of IDB predicates (derived).
    pub fn idbs(&self) -> impl Iterator<Item = &PredInfo> {
        self.preds.iter().filter(|p| p.is_idb)
    }
}

/// Run the analyzer.
pub fn analyze(program: Program) -> Result<Analysis> {
    let preds = collect_preds(&program)?;
    check_safety(&program)?;
    let strata = stratify(&program)?;
    check_negation_stratified(&program, &strata)?;
    check_aggregation(&program, &preds, &strata)?;
    Ok(Analysis {
        program,
        preds,
        strata,
    })
}

fn head_agg_sig(rule: &Rule) -> Vec<Option<AggFunc>> {
    rule.head
        .terms
        .iter()
        .map(|t| match t {
            HeadTerm::Plain(_) => None,
            HeadTerm::Agg { func, .. } => Some(*func),
        })
        .collect()
}

fn collect_preds(program: &Program) -> Result<Vec<PredInfo>> {
    let mut order: Vec<String> = Vec::new();
    let mut arity: FxHashMap<String, usize> = FxHashMap::default();
    let mut is_idb: FxHashSet<String> = FxHashSet::default();
    let mut agg_sig: FxHashMap<String, Vec<Option<AggFunc>>> = FxHashMap::default();

    let mut note = |name: &str, a: usize| -> Result<()> {
        match arity.get(name) {
            Some(&prev) if prev != a => Err(Error::analysis(format!(
                "predicate '{name}' used with arities {prev} and {a}"
            ))),
            Some(_) => Ok(()),
            None => {
                arity.insert(name.to_string(), a);
                order.push(name.to_string());
                Ok(())
            }
        }
    };

    for rule in &program.rules {
        note(&rule.head.pred, rule.head.arity())?;
        is_idb.insert(rule.head.pred.clone());
        let sig = head_agg_sig(rule);
        match agg_sig.get(&rule.head.pred) {
            Some(prev) if *prev != sig => {
                return Err(Error::analysis(format!(
                    "rules for '{}' disagree on aggregation positions",
                    rule.head.pred
                )))
            }
            Some(_) => {}
            None => {
                agg_sig.insert(rule.head.pred.clone(), sig);
            }
        }
        for lit in &rule.body {
            match lit {
                Literal::Pos(a) | Literal::Neg(a) => note(&a.pred, a.arity())?,
                Literal::Cmp { .. } => {}
            }
        }
    }
    for (name, vals) in &program.facts {
        note(name, vals.len())?;
    }
    for name in program.inputs.iter().chain(&program.outputs) {
        if !arity.contains_key(name) {
            return Err(Error::analysis(format!(
                "directive references unknown relation '{name}'"
            )));
        }
    }

    Ok(order
        .into_iter()
        .map(|name| {
            let a = arity[&name];
            let idb = is_idb.contains(&name);
            let sig = if idb {
                agg_sig[&name].clone()
            } else {
                Vec::new()
            };
            PredInfo {
                arity: a,
                is_idb: idb,
                agg_sig: sig,
                name,
            }
        })
        .collect())
}

fn rule_vars_positive(rule: &Rule) -> FxHashSet<&str> {
    let mut vars = FxHashSet::default();
    for atom in rule.positive_atoms() {
        for t in &atom.terms {
            if let BodyTerm::Var(v) = t {
                vars.insert(v.as_str());
            }
        }
    }
    vars
}

fn check_expr_bound(e: &AExpr, bound: &FxHashSet<&str>, rule: &Rule, what: &str) -> Result<()> {
    let mut vars = Vec::new();
    e.collect_vars(&mut vars);
    for v in vars {
        if !bound.contains(v.as_str()) {
            return Err(Error::analysis(format!(
                "unsafe rule '{}': variable '{v}' in {what} is not bound by a positive body atom",
                rule.display()
            )));
        }
    }
    Ok(())
}

fn check_safety(program: &Program) -> Result<()> {
    for rule in &program.rules {
        if rule.positive_atoms().next().is_none() {
            return Err(Error::analysis(format!(
                "unsafe rule '{}': no positive body atom",
                rule.display()
            )));
        }
        let bound = rule_vars_positive(rule);
        for term in &rule.head.terms {
            let (expr, what) = match term {
                HeadTerm::Plain(e) => (e, "head"),
                HeadTerm::Agg { expr, .. } => (expr, "aggregate argument"),
            };
            check_expr_bound(expr, &bound, rule, what)?;
        }
        for lit in &rule.body {
            match lit {
                Literal::Neg(a) => {
                    for t in &a.terms {
                        if let BodyTerm::Var(v) = t {
                            if !bound.contains(v.as_str()) {
                                return Err(Error::analysis(format!(
                                    "unsafe rule '{}': variable '{v}' of negated atom is not bound",
                                    rule.display()
                                )));
                            }
                        }
                    }
                }
                Literal::Cmp { lhs, rhs, .. } => {
                    check_expr_bound(lhs, &bound, rule, "comparison")?;
                    check_expr_bound(rhs, &bound, rule, "comparison")?;
                }
                Literal::Pos(_) => {}
            }
        }
    }
    Ok(())
}

/// Tarjan SCC over the rule dependency graph, returning strata in
/// topological (evaluation) order.
fn stratify(program: &Program) -> Result<Vec<Stratum>> {
    let n = program.rules.len();
    // head pred -> rules defining it
    let mut defs: FxHashMap<&str, Vec<usize>> = FxHashMap::default();
    for (i, rule) in program.rules.iter().enumerate() {
        defs.entry(rule.head.pred.as_str()).or_default().push(i);
    }
    // Edge r -> r' if head(r) occurs in body(r') (positive or negated).
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut has_self_loop = vec![false; n];
    for (j, rule) in program.rules.iter().enumerate() {
        for lit in &rule.body {
            let pred = match lit {
                Literal::Pos(a) | Literal::Neg(a) => a.pred.as_str(),
                Literal::Cmp { .. } => continue,
            };
            if let Some(sources) = defs.get(pred) {
                for &i in sources {
                    if i == j {
                        has_self_loop[j] = true;
                    }
                    if !succ[i].contains(&j) {
                        succ[i].push(j);
                    }
                }
            }
        }
    }

    // Iterative Tarjan.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call = vec![Frame::Enter(start)];
        while let Some(frame) = call.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    call.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut ei) => {
                    let mut descended = false;
                    while ei < succ[v].len() {
                        let w = succ[v][ei];
                        ei += 1;
                        if index[w] == usize::MAX {
                            call.push(Frame::Resume(v, ei));
                            call.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        sccs.push(comp);
                    } else if let Some(Frame::Resume(parent, _)) = call.last() {
                        low[*parent] = low[*parent].min(low[v]);
                    }
                }
            }
        }
    }

    // Tarjan emits SCCs in reverse topological order of the condensation.
    sccs.reverse();
    Ok(sccs
        .into_iter()
        .map(|rules| {
            let recursive = rules.len() > 1 || has_self_loop[rules[0]];
            let mut idbs: Vec<String> = Vec::new();
            for &r in &rules {
                let h = &program.rules[r].head.pred;
                if !idbs.contains(h) {
                    idbs.push(h.clone());
                }
            }
            Stratum {
                rules,
                idbs,
                recursive,
            }
        })
        .collect())
}

fn check_negation_stratified(program: &Program, strata: &[Stratum]) -> Result<()> {
    // Stratum index of each rule.
    let mut stratum_of = vec![0usize; program.rules.len()];
    for (s, st) in strata.iter().enumerate() {
        for &r in &st.rules {
            stratum_of[r] = s;
        }
    }
    for (j, rule) in program.rules.iter().enumerate() {
        for neg in rule.negated_atoms() {
            for (i, def) in program.rules.iter().enumerate() {
                if def.head.pred == neg.pred && stratum_of[i] >= stratum_of[j] {
                    return Err(Error::analysis(format!(
                        "negation of '{}' in rule '{}' is not stratified (its definition is not \
                         in a strictly lower stratum)",
                        neg.pred,
                        rule.display()
                    )));
                }
            }
        }
    }
    Ok(())
}

fn check_aggregation(program: &Program, preds: &[PredInfo], strata: &[Stratum]) -> Result<()> {
    let agg_of = |name: &str| -> Option<&Vec<Option<AggFunc>>> {
        preds
            .iter()
            .find(|p| p.name == name && p.agg_sig.iter().any(Option::is_some))
            .map(|p| &p.agg_sig)
    };
    for st in strata.iter().filter(|s| s.recursive) {
        let stratum_idbs: FxHashSet<&str> = st.idbs.iter().map(String::as_str).collect();
        for &r in &st.rules {
            let rule = &program.rules[r];
            let head_is_agg = rule.has_aggregation();
            if head_is_agg {
                // Monotonic fragment only.
                for term in &rule.head.terms {
                    if let HeadTerm::Agg { func, .. } = term {
                        if !matches!(func, AggFunc::Min | AggFunc::Max) {
                            return Err(Error::analysis(format!(
                                "recursive aggregation in '{}' must be MIN or MAX",
                                rule.display()
                            )));
                        }
                    }
                }
            }
            // Count recursive atoms; restrict aggregate recursion to linear
            // rules, and same-stratum references to an aggregated IDB to the
            // rules of that IDB itself.
            let mut recursive_atoms = 0usize;
            for atom in rule.positive_atoms() {
                if stratum_idbs.contains(atom.pred.as_str()) {
                    recursive_atoms += 1;
                    if agg_of(&atom.pred).is_some() && atom.pred != rule.head.pred {
                        return Err(Error::analysis(format!(
                            "aggregated IDB '{}' may not be referenced by other relations of \
                             its own recursive stratum (rule '{}')",
                            atom.pred,
                            rule.display()
                        )));
                    }
                }
            }
            if head_is_agg && recursive_atoms > 1 {
                return Err(Error::analysis(format!(
                    "recursive aggregation requires linear recursion; rule '{}' has {} \
                     recursive atoms",
                    rule.display(),
                    recursive_atoms
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyzed(src: &str) -> Analysis {
        analyze(parse(src).unwrap()).unwrap()
    }

    #[test]
    fn tc_two_strata() {
        let a = analyzed("tc(x, y) :- arc(x, y).\ntc(x, y) :- tc(x, z), arc(z, y).");
        assert_eq!(a.strata.len(), 2);
        assert!(!a.strata[0].recursive);
        assert!(a.strata[1].recursive);
        assert_eq!(a.strata[0].idbs, vec!["tc"]);
        assert!(a.pred("tc").unwrap().is_idb);
        assert!(!a.pred("arc").unwrap().is_idb);
        assert_eq!(a.pred("arc").unwrap().arity, 2);
    }

    #[test]
    fn mutual_recursion_single_stratum() {
        let a = analyzed(
            "p(x, y) :- e(x, y).\n\
             p(x, y) :- q(x, z), e(z, y).\n\
             q(x, y) :- p(x, z), f(z, y).",
        );
        // Base rule in its own stratum; p/q cycle shares one.
        let rec: Vec<_> = a.strata.iter().filter(|s| s.recursive).collect();
        assert_eq!(rec.len(), 1);
        let mut idbs = rec[0].idbs.clone();
        idbs.sort();
        assert_eq!(idbs, vec!["p", "q"]);
    }

    #[test]
    fn strata_are_topologically_ordered() {
        let a = analyzed(
            "tc(x, y) :- arc(x, y).\n\
             tc(x, y) :- tc(x, z), arc(z, y).\n\
             node(x) :- arc(x, y).\n\
             node(y) :- arc(x, y).\n\
             ntc(x, y) :- node(x), node(y), !tc(x, y).",
        );
        let pos = |pred: &str| {
            a.strata
                .iter()
                .rposition(|s| s.idbs.iter().any(|i| i == pred))
                .unwrap()
        };
        assert!(pos("tc") < pos("ntc"));
        assert!(pos("node") < pos("ntc"));
    }

    #[test]
    fn cspa_mutual_recursion_is_one_stratum() {
        let a = analyzed(crate::programs::CSPA);
        let rec: Vec<_> = a.strata.iter().filter(|s| s.recursive).collect();
        assert_eq!(
            rec.len(),
            1,
            "valueFlow/valueAlias/memoryAlias must share one SCC"
        );
        let mut idbs = rec[0].idbs.clone();
        idbs.sort();
        assert_eq!(idbs, vec!["memoryAlias", "valueAlias", "valueFlow"]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = analyze(parse("r(x) :- s(x).\nr(x, y) :- s(x), s(y).").unwrap()).unwrap_err();
        assert!(err.to_string().contains("arities"));
    }

    #[test]
    fn unsafe_head_var_rejected() {
        let err = analyze(parse("r(x, y) :- s(x).").unwrap()).unwrap_err();
        assert!(err.to_string().contains("unsafe"));
    }

    #[test]
    fn unsafe_negation_only_rule_rejected() {
        let err = analyze(parse("r(x) :- !s(x).").unwrap()).unwrap_err();
        assert!(err.to_string().contains("no positive body atom"));
    }

    #[test]
    fn unsafe_negated_var_rejected() {
        let err = analyze(parse("r(x) :- s(x), !t(y).").unwrap()).unwrap_err();
        assert!(err.to_string().contains("negated"));
    }

    #[test]
    fn unsafe_comparison_var_rejected() {
        let err = analyze(parse("r(x) :- s(x), y < 3.").unwrap()).unwrap_err();
        assert!(err.to_string().contains("comparison"));
    }

    #[test]
    fn unstratified_negation_rejected() {
        let err =
            analyze(parse("p(x) :- s(x), !q(x).\nq(x) :- s(x), !p(x).").unwrap()).unwrap_err();
        assert!(err.to_string().contains("not stratified"));
    }

    #[test]
    fn negation_through_recursion_rejected() {
        let err = analyze(parse("p(x) :- s(x).\np(x) :- e(x, y), !p(y).").unwrap()).unwrap_err();
        assert!(err.to_string().contains("not stratified"));
    }

    #[test]
    fn recursive_sum_rejected() {
        let err = analyze(
            parse("t(x, SUM(d)) :- t(y, d), e(y, x).\nt(x, SUM(d)) :- base(x, d).").unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("MIN or MAX"));
    }

    #[test]
    fn recursive_min_accepted() {
        let a = analyzed(
            "cc3(x, MIN(x)) :- arc(x, _).\n\
             cc3(y, MIN(z)) :- cc3(x, z), arc(x, y).\n\
             cc2(x, MIN(y)) :- cc3(x, y).\n\
             cc(x) :- cc2(_, x).",
        );
        let cc3 = a.pred("cc3").unwrap();
        assert_eq!(cc3.agg_sig, vec![None, Some(AggFunc::Min)]);
    }

    #[test]
    fn nonlinear_recursive_aggregation_rejected() {
        let err = analyze(
            parse(
                "t(x, MIN(d)) :- base(x, d).\n\
                 t(x, MIN(a + b)) :- t(y, a), t(z, b), e(y, z, x).",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("linear"));
    }

    #[test]
    fn disagreeing_agg_signatures_rejected() {
        let err = analyze(parse("t(x, MIN(d)) :- base(x, d).\nt(x, d) :- other(x, d).").unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("disagree"));
    }

    #[test]
    fn directive_to_unknown_relation_rejected() {
        let err = analyze(parse(".input nothere\nr(x) :- s(x).").unwrap()).unwrap_err();
        assert!(err.to_string().contains("unknown relation"));
    }

    #[test]
    fn andersen_strata_shape() {
        let a = analyzed(crate::programs::ANDERSEN);
        // pointsTo's three recursive rules form one SCC.
        let rec: Vec<_> = a.strata.iter().filter(|s| s.recursive).collect();
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].rules.len(), 3);
        assert_eq!(rec[0].idbs, vec!["pointsTo"]);
    }
}
