//! Datalog frontend: parser, rule analyzer, semi-naïve plan generator.
//!
//! Mirrors the front half of the RecStep architecture (paper Figure 1):
//!
//! * [`ast`] + [`lexer`] + [`parser`] — the *Datalog Parser*: the surface
//!   language of the paper (§3) with stratified negation, aggregation in
//!   heads (including recursive aggregation), arithmetic and comparisons;
//! * [`analyze`] — the *Rule Analyzer*: identifies IDB and EDB relations,
//!   verifies syntactic correctness and safety, and constructs the
//!   dependency graph and stratification;
//! * [`plan`] — the *Query Generator*: compiles each stratum into logical
//!   plans following the semi-naïve rewriting (one subquery per δ-position
//!   for non-linear rules), either unified per IDB (UIE) or rule-by-rule;
//! * [`sqlgen`] — renders plans as the SQL text RecStep would send to
//!   QuickStep (reproducing Figure 4's UIE vs. individual-IDB evaluation);
//! * [`programs`] — the benchmark programs of Table 3, as canonical sources.

pub mod analyze;
pub mod ast;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod programs;
pub mod sqlgen;

pub use analyze::{Analysis, Stratum};
pub use ast::{AExpr, Atom, BodyTerm, HeadTerm, Literal, Program, Rule};
pub use plan::{
    AtomVersion, CompiledIdb, CompiledProgram, CompiledStratum, IdbAgg, JoinStep, NegSpec, RelDecl,
    ScanSpec, SubQuery,
};
