//! The query generator: compiling analyzed rules into logical plans.
//!
//! Each stratum compiles to one [`CompiledIdb`] per head relation, holding
//! the *subqueries* of the semi-naïve rewriting: a rule with `k` occurrences
//! of same-stratum (recursive) IDBs yields `k` subqueries, the `i`-th
//! scanning occurrence `i` as `∆` (Delta), occurrences before it as the full
//! relation (Full) and occurrences after it as the previous iteration's
//! snapshot (Old) — the standard non-redundant rewriting for non-linear
//! rules the paper references in §3.2. Plans are purely positional: variable
//! names are resolved to flattened-row column indices here so the backend
//! never sees names.

use recstep_common::hash::FxHashMap;
use recstep_common::lang::{AggFunc, CmpOp, Expr, Predicate};
use recstep_common::{Error, Result};

use crate::analyze::Analysis;
use crate::ast::{AExpr, Atom, BodyTerm, HeadTerm, Literal, Rule};

/// Which version of a relation a scan reads (Algorithm 1's views).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomVersion {
    /// An EDB or an IDB of a lower stratum: always the full contents.
    Base,
    /// Full recursive relation (facts through iteration `t`).
    Full,
    /// The delta of the previous iteration.
    Delta,
    /// Facts through iteration `t-1` (the pre-merge prefix).
    Old,
}

/// One positive body atom as a physical scan.
#[derive(Clone, Debug)]
pub struct ScanSpec {
    /// Relation name.
    pub rel: String,
    /// Which view of it.
    pub version: AtomVersion,
    /// Arity of the relation.
    pub arity: usize,
    /// Atom-local selection predicates (constant arguments, repeated
    /// variables within the atom).
    pub filters: Vec<Predicate>,
}

/// One step of the left-deep join chain: joins scan `i+1` onto the
/// accumulated flattened row.
#[derive(Clone, Debug)]
pub struct JoinStep {
    /// Key columns in the accumulated (flattened) layout.
    pub left_keys: Vec<usize>,
    /// Key columns local to the joined scan (pairwise equal).
    pub right_keys: Vec<usize>,
}

/// A negated atom, applied as an anti join after the positive joins.
#[derive(Clone, Debug)]
pub struct NegSpec {
    /// Negated relation name (EDB or lower-stratum IDB).
    pub rel: String,
    /// Its arity.
    pub arity: usize,
    /// Atom-local filters (constants, repeated variables).
    pub filters: Vec<Predicate>,
    /// Anti-join key columns in the flattened layout.
    pub left_keys: Vec<usize>,
    /// Corresponding columns of the negated atom.
    pub right_keys: Vec<usize>,
}

/// Plan for evaluating one subquery with the generic worst-case optimal
/// multiway join instead of the binary chain.
///
/// Attached to a [`SubQuery`] when its body qualifies: at least three
/// filter-free positive atoms (every argument a distinct variable), no
/// negation, and a *cyclic* join hypergraph ([`hypergraph_is_cyclic`]) —
/// exactly the shapes where a binary plan materializes an asymptotically
/// larger intermediate than the AGM output bound. Variables are ordered
/// globally (most-shared first); each scan's columns reordered by that
/// order become a sorted-trie access path, and evaluation intersects one
/// variable per *level*. All fields are positional, like the rest of the
/// plan: the backend never sees variable names.
#[derive(Clone, Debug)]
pub struct WcojPlan {
    /// Number of join variables (= intersection levels), in order.
    pub levels: usize,
    /// Per scan: its column indices ordered by the global variable order
    /// (the trie sort order).
    pub scan_cols: Vec<Vec<usize>>,
    /// Per level: `(scan, depth)` participants — the scans containing this
    /// level's variable, with the variable's depth in that scan's
    /// `scan_cols` order.
    pub level_scans: Vec<Vec<(usize, usize)>>,
    /// Per level: flattened-layout positions bound by this level's value
    /// (every occurrence of the variable across the body).
    pub level_slots: Vec<Vec<usize>>,
}

/// One subquery of the semi-naïve rewriting of one rule.
#[derive(Clone, Debug)]
pub struct SubQuery {
    /// Index of the originating rule in the program (provenance).
    pub rule_idx: usize,
    /// Which scan is the ∆ occurrence (`None` in non-recursive strata).
    pub delta_scan: Option<usize>,
    /// Positive atoms in body order.
    pub scans: Vec<ScanSpec>,
    /// Join chain (`scans.len() - 1` entries; empty keys mean cross join).
    pub joins: Vec<JoinStep>,
    /// Residual comparison predicates over the flattened layout.
    pub residual: Vec<Predicate>,
    /// Anti joins for negated atoms.
    pub negations: Vec<NegSpec>,
    /// Projection to the head layout (for aggregated heads: plain terms
    /// first, aggregate arguments after).
    pub head_exprs: Vec<Expr>,
    /// Total width of the flattened layout (sum of scan arities).
    pub width: usize,
    /// Worst-case optimal evaluation plan, attached when the body is
    /// cyclic (the `wcoj` config flag picks between this and `joins` at
    /// run time, so one compiled program serves both ablation arms).
    pub wcoj: Option<WcojPlan>,
}

/// Aggregation metadata of an aggregated IDB.
#[derive(Clone, Debug)]
pub struct IdbAgg {
    /// Head positions holding plain (grouping) terms, in head order.
    pub group_positions: Vec<usize>,
    /// Head positions holding aggregates, in head order.
    pub agg_positions: Vec<usize>,
    /// Aggregate function per entry of `agg_positions`.
    pub funcs: Vec<AggFunc>,
}

/// All subqueries evaluating one IDB within one stratum (the unit the
/// paper's UIE batches into a single query).
#[derive(Clone, Debug)]
pub struct CompiledIdb {
    /// Relation name.
    pub rel: String,
    /// Stored arity (head arity).
    pub arity: usize,
    /// Aggregation shape, if the head aggregates.
    pub agg: Option<IdbAgg>,
    /// The subqueries whose UNION ALL produces the iteration's candidates.
    pub subqueries: Vec<SubQuery>,
    /// Temp-table name of the UNION-ALL intermediate (`{rel}_rt`), built
    /// once here instead of being re-formatted every iteration.
    pub rt_name: String,
    /// Temp-table name of the deduplicated candidates (`{rel}_rdelta`).
    pub rdelta_name: String,
    /// Temp-table / staging name of `∆R` (`{rel}_mDelta`).
    pub delta_name: String,
    /// Per-subquery temp-table names of the individual-evaluation (IIE)
    /// path (`{rel}_tmp_mDelta{i}`), indexed like `subqueries`.
    pub tmp_names: Vec<String>,
}

/// One stratum of the compiled program.
#[derive(Clone, Debug)]
pub struct CompiledStratum {
    /// True when the stratum iterates to fixpoint.
    pub recursive: bool,
    /// The IDBs evaluated in this stratum.
    pub idbs: Vec<CompiledIdb>,
}

/// Declaration of a relation the engine must materialize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelDecl {
    /// Relation name.
    pub name: String,
    /// Arity.
    pub arity: usize,
    /// True for derived (IDB) relations.
    pub is_idb: bool,
}

/// A fully compiled program, ready for the interpreter.
///
/// This is the reusable compiled-plan handle of the prepare-once /
/// run-many API: everything an evaluation needs — strata, relation
/// declarations, inline facts, I/O directives — is captured here, so a
/// compiled program can be executed any number of times without touching
/// the source text again.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// Strata in evaluation order.
    pub strata: Vec<CompiledStratum>,
    /// Every relation mentioned by the program.
    pub relations: Vec<RelDecl>,
    /// Ground facts stated inline in the source (`arc(1, 2).`), loaded
    /// into their relations at the start of every run.
    pub facts: Vec<(String, Vec<recstep_common::Value>)>,
    /// Relations requested via `.input` (to be loaded before evaluation).
    pub inputs: Vec<String>,
    /// Relations requested via `.output` (empty = all IDBs).
    pub outputs: Vec<String>,
}

impl CompiledProgram {
    /// Declared arity of a relation, if the program mentions it.
    pub fn arity_of(&self, name: &str) -> Option<usize> {
        self.relations
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.arity)
    }

    /// Names of the derived (IDB) relations, in declaration order.
    pub fn idb_names(&self) -> impl Iterator<Item = &str> {
        self.relations
            .iter()
            .filter(|r| r.is_idb)
            .map(|r| r.name.as_str())
    }
}

/// Compile an analyzed program into logical plans.
pub fn compile(analysis: &Analysis) -> Result<CompiledProgram> {
    let arity_of: FxHashMap<&str, usize> = analysis
        .preds
        .iter()
        .map(|p| (p.name.as_str(), p.arity))
        .collect();
    let mut strata = Vec::with_capacity(analysis.strata.len());
    for stratum in &analysis.strata {
        let stratum_idbs: Vec<&str> = stratum.idbs.iter().map(String::as_str).collect();
        // Group rules by head predicate, preserving stratum order.
        let mut idbs: Vec<CompiledIdb> = Vec::new();
        for &ri in &stratum.rules {
            let rule = &analysis.program.rules[ri];
            let idb_pos = idbs.iter().position(|c| c.rel == rule.head.pred);
            let idb = match idb_pos {
                Some(p) => &mut idbs[p],
                None => {
                    let rel = rule.head.pred.clone();
                    idbs.push(CompiledIdb {
                        rt_name: format!("{rel}_rt"),
                        rdelta_name: format!("{rel}_rdelta"),
                        delta_name: format!("{rel}_mDelta"),
                        rel,
                        arity: rule.head.arity(),
                        agg: agg_shape(rule),
                        subqueries: Vec::new(),
                        tmp_names: Vec::new(),
                    });
                    idbs.last_mut().unwrap()
                }
            };
            let recursive_positions: Vec<usize> = rule
                .positive_atoms()
                .enumerate()
                .filter(|(_, a)| stratum.recursive && stratum_idbs.contains(&a.pred.as_str()))
                .map(|(i, _)| i)
                .collect();
            if recursive_positions.is_empty() {
                idb.subqueries
                    .push(compile_subquery(rule, ri, None, &[], &arity_of)?);
            } else {
                for &dp in &recursive_positions {
                    idb.subqueries.push(compile_subquery(
                        rule,
                        ri,
                        Some(dp),
                        &recursive_positions,
                        &arity_of,
                    )?);
                }
            }
        }
        for idb in &mut idbs {
            idb.tmp_names = (0..idb.subqueries.len())
                .map(|i| format!("{}_tmp_mDelta{}", idb.rel, i))
                .collect();
        }
        strata.push(CompiledStratum {
            recursive: stratum.recursive,
            idbs,
        });
    }
    let relations = analysis
        .preds
        .iter()
        .map(|p| RelDecl {
            name: p.name.clone(),
            arity: p.arity,
            is_idb: p.is_idb,
        })
        .collect();
    Ok(CompiledProgram {
        strata,
        relations,
        facts: analysis.program.facts.clone(),
        inputs: analysis.program.inputs.clone(),
        outputs: analysis.program.outputs.clone(),
    })
}

fn agg_shape(rule: &Rule) -> Option<IdbAgg> {
    if !rule.has_aggregation() {
        return None;
    }
    let mut group_positions = Vec::new();
    let mut agg_positions = Vec::new();
    let mut funcs = Vec::new();
    for (i, t) in rule.head.terms.iter().enumerate() {
        match t {
            HeadTerm::Plain(_) => group_positions.push(i),
            HeadTerm::Agg { func, .. } => {
                agg_positions.push(i);
                funcs.push(*func);
            }
        }
    }
    Some(IdbAgg {
        group_positions,
        agg_positions,
        funcs,
    })
}

/// Translate an arithmetic expression with the variable→column binding.
fn translate(e: &AExpr, bind: &FxHashMap<&str, usize>, rule: &Rule) -> Result<Expr> {
    Ok(match e {
        AExpr::Var(v) => Expr::Col(*bind.get(v.as_str()).ok_or_else(|| {
            Error::analysis(format!(
                "unbound variable '{v}' in rule '{}'",
                rule.display()
            ))
        })?),
        AExpr::Const(c) => Expr::Const(*c),
        AExpr::Add(a, b) => Expr::add(translate(a, bind, rule)?, translate(b, bind, rule)?),
        AExpr::Sub(a, b) => Expr::sub(translate(a, bind, rule)?, translate(b, bind, rule)?),
        AExpr::Mul(a, b) => Expr::mul(translate(a, bind, rule)?, translate(b, bind, rule)?),
    })
}

/// Atom-local filters: constant arguments and repeated variables.
fn local_filters(atom: &Atom<BodyTerm>) -> Vec<Predicate> {
    let mut filters = Vec::new();
    let mut first: FxHashMap<&str, usize> = FxHashMap::default();
    for (i, t) in atom.terms.iter().enumerate() {
        match t {
            BodyTerm::Const(c) => filters.push(Predicate {
                lhs: Expr::Col(i),
                op: CmpOp::Eq,
                rhs: Expr::Const(*c),
            }),
            BodyTerm::Var(v) => match first.get(v.as_str()) {
                Some(&j) => filters.push(Predicate {
                    lhs: Expr::Col(i),
                    op: CmpOp::Eq,
                    rhs: Expr::Col(j),
                }),
                None => {
                    first.insert(v.as_str(), i);
                }
            },
        }
    }
    filters
}

fn compile_subquery(
    rule: &Rule,
    rule_idx: usize,
    delta_pos: Option<usize>,
    recursive_positions: &[usize],
    arity_of: &FxHashMap<&str, usize>,
) -> Result<SubQuery> {
    let atoms: Vec<&Atom<BodyTerm>> = rule.positive_atoms().collect();
    debug_assert!(!atoms.is_empty(), "safety guarantees a positive atom");

    let mut scans = Vec::with_capacity(atoms.len());
    let mut joins = Vec::with_capacity(atoms.len().saturating_sub(1));
    let mut bind: FxHashMap<&str, usize> = FxHashMap::default();
    let mut offset = 0usize;

    for (ai, atom) in atoms.iter().enumerate() {
        let version = match delta_pos {
            None => AtomVersion::Base,
            Some(dp) => {
                if !recursive_positions.contains(&ai) {
                    AtomVersion::Base
                } else if ai == dp {
                    AtomVersion::Delta
                } else if ai < dp {
                    AtomVersion::Full
                } else {
                    AtomVersion::Old
                }
            }
        };
        let arity = *arity_of
            .get(atom.pred.as_str())
            .expect("analyzer registered arity");
        scans.push(ScanSpec {
            rel: atom.pred.clone(),
            version,
            arity,
            filters: local_filters(atom),
        });
        if ai > 0 {
            // Join keys: variables of this atom already bound earlier.
            let mut left_keys = Vec::new();
            let mut right_keys = Vec::new();
            let mut seen_local: FxHashMap<&str, ()> = FxHashMap::default();
            for (i, t) in atom.terms.iter().enumerate() {
                if let BodyTerm::Var(v) = t {
                    if seen_local.contains_key(v.as_str()) {
                        continue; // local repeat handled by scan filter
                    }
                    seen_local.insert(v.as_str(), ());
                    if let Some(&flat) = bind.get(v.as_str()) {
                        left_keys.push(flat);
                        right_keys.push(i);
                    }
                }
            }
            joins.push(JoinStep {
                left_keys,
                right_keys,
            });
        }
        // Bind this atom's fresh variables at their flattened positions.
        for (i, t) in atom.terms.iter().enumerate() {
            if let BodyTerm::Var(v) = t {
                bind.entry(v.as_str()).or_insert(offset + i);
            }
        }
        offset += arity;
    }
    let width = offset;

    // Residual comparisons.
    let mut residual = Vec::new();
    for lit in &rule.body {
        if let Literal::Cmp { lhs, op, rhs } = lit {
            residual.push(Predicate {
                lhs: translate(lhs, &bind, rule)?,
                op: *op,
                rhs: translate(rhs, &bind, rule)?,
            });
        }
    }

    // Negated atoms become anti joins.
    let mut negations = Vec::new();
    for atom in rule.negated_atoms() {
        let arity = *arity_of
            .get(atom.pred.as_str())
            .expect("analyzer registered arity");
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut seen_local: FxHashMap<&str, ()> = FxHashMap::default();
        for (i, t) in atom.terms.iter().enumerate() {
            if let BodyTerm::Var(v) = t {
                if seen_local.contains_key(v.as_str()) {
                    continue;
                }
                seen_local.insert(v.as_str(), ());
                // Safety guarantees the variable is bound.
                left_keys.push(bind[v.as_str()]);
                right_keys.push(i);
            }
        }
        negations.push(NegSpec {
            rel: atom.pred.clone(),
            arity,
            filters: local_filters(atom),
            left_keys,
            right_keys,
        });
    }

    // Head projection: plain terms first (group), aggregate arguments after.
    let mut head_exprs = Vec::with_capacity(rule.head.terms.len());
    for t in &rule.head.terms {
        if let HeadTerm::Plain(e) = t {
            head_exprs.push(translate(e, &bind, rule)?);
        }
    }
    for t in &rule.head.terms {
        if let HeadTerm::Agg { expr, .. } = t {
            head_exprs.push(translate(expr, &bind, rule)?);
        }
    }

    let wcoj = if negations.is_empty() {
        wcoj_plan(&atoms, &scans)
    } else {
        None
    };
    Ok(SubQuery {
        rule_idx,
        delta_scan: delta_pos,
        scans,
        joins,
        residual,
        negations,
        head_exprs,
        width,
        wcoj,
    })
}

/// GYO reduction: is the join hypergraph (one hyperedge of variable ids
/// per atom) cyclic?
///
/// Repeatedly (1) drops *ear* vertices — variables appearing in exactly
/// one remaining edge — and (2) drops edges that became empty or a subset
/// of another remaining edge. The hypergraph is α-acyclic iff this
/// reduction consumes every edge; a body on which it gets stuck (the
/// triangle, any odd cycle, …) is cyclic, and those are the shapes where
/// the worst-case optimal plan beats the binary chain asymptotically.
/// Bodies of one or two atoms are always acyclic.
pub fn hypergraph_is_cyclic(edges: &[Vec<usize>]) -> bool {
    let mut edges: Vec<Vec<usize>> = edges.to_vec();
    loop {
        // Drop ear vertices (variables local to one edge).
        let mut count: FxHashMap<usize, usize> = FxHashMap::default();
        for e in &edges {
            for &v in e {
                *count.entry(v).or_insert(0) += 1;
            }
        }
        let before: usize = edges.iter().map(Vec::len).sum();
        for e in &mut edges {
            e.retain(|v| count[v] > 1);
        }
        // Drop empty edges and edges covered by another remaining edge.
        let snapshot = edges.clone();
        let mut kept = Vec::with_capacity(edges.len());
        for (i, e) in snapshot.iter().enumerate() {
            let covered = e.is_empty()
                || snapshot.iter().enumerate().any(|(j, other)| {
                    // Subset of an earlier equal edge or any strict superset
                    // (ties broken by index so equal edges drop all but one).
                    j != i
                        && e.iter().all(|v| other.contains(v))
                        && (other.len() > e.len() || j < i)
                });
            if !covered {
                kept.push(e.clone());
            }
        }
        let after: usize = kept.iter().map(Vec::len).sum();
        let stuck = kept.len() == edges.len() && after == before;
        edges = kept;
        if edges.is_empty() {
            return false;
        }
        if stuck {
            return true;
        }
    }
}

/// Build the worst-case optimal plan for a rule body, or `None` when the
/// body does not qualify (fewer than three atoms, any filtered scan —
/// constants or atom-local repeats — or an acyclic hypergraph, where the
/// binary chain is already optimal).
fn wcoj_plan(atoms: &[&Atom<BodyTerm>], scans: &[ScanSpec]) -> Option<WcojPlan> {
    if atoms.len() < 3 || scans.iter().any(|s| !s.filters.is_empty()) {
        return None;
    }
    // Filter-free scans have all-variable, locally-distinct arguments.
    let mut ids: FxHashMap<&str, usize> = FxHashMap::default();
    let mut edges: Vec<Vec<usize>> = Vec::with_capacity(atoms.len());
    for atom in atoms {
        let mut edge = Vec::with_capacity(atom.terms.len());
        for t in &atom.terms {
            let BodyTerm::Var(v) = t else {
                debug_assert!(false, "constants imply scan filters");
                return None;
            };
            let next = ids.len();
            edge.push(*ids.entry(v.as_str()).or_insert(next));
        }
        edges.push(edge);
    }
    if !hypergraph_is_cyclic(&edges) {
        return None;
    }
    // Global variable order: most-shared first (ties by first occurrence),
    // so the top intersection levels are the most constrained.
    let nvars = ids.len();
    let mut freq = vec![0usize; nvars];
    for edge in &edges {
        for &v in edge {
            freq[v] += 1;
        }
    }
    let mut order: Vec<usize> = (0..nvars).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(freq[v]), v));
    let mut level_of = vec![0usize; nvars];
    for (l, &v) in order.iter().enumerate() {
        level_of[v] = l;
    }
    let mut scan_cols = Vec::with_capacity(atoms.len());
    let mut level_scans = vec![Vec::new(); nvars];
    let mut level_slots = vec![Vec::new(); nvars];
    let mut offset = 0usize;
    for (i, edge) in edges.iter().enumerate() {
        let mut by_level: Vec<(usize, usize)> = edge
            .iter()
            .enumerate()
            .map(|(col, &v)| (level_of[v], col))
            .collect();
        by_level.sort_unstable();
        for (depth, &(level, col)) in by_level.iter().enumerate() {
            level_scans[level].push((i, depth));
            level_slots[level].push(offset + col);
        }
        scan_cols.push(by_level.into_iter().map(|(_, col)| col).collect());
        offset += scans[i].arity;
    }
    Some(WcojPlan {
        levels: nvars,
        scan_cols,
        level_scans,
        level_slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::parser::parse;

    fn compiled(src: &str) -> CompiledProgram {
        compile(&analyze(parse(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn tc_plan_shape() {
        let p = compiled(crate::programs::TC);
        assert_eq!(p.strata.len(), 2);
        // Base stratum: single Base scan, projection only.
        let base = &p.strata[0].idbs[0];
        assert_eq!(base.rel, "tc");
        assert_eq!(base.subqueries.len(), 1);
        let sq = &base.subqueries[0];
        assert_eq!(sq.scans.len(), 1);
        assert_eq!(sq.scans[0].version, AtomVersion::Base);
        assert_eq!(sq.head_exprs, vec![Expr::Col(0), Expr::Col(1)]);
        // Recursive stratum: linear rule → one subquery, delta on tc.
        let rec = &p.strata[1].idbs[0];
        assert_eq!(rec.subqueries.len(), 1);
        let sq = &rec.subqueries[0];
        assert_eq!(sq.delta_scan, Some(0));
        assert_eq!(sq.scans[0].version, AtomVersion::Delta);
        assert_eq!(sq.scans[1].version, AtomVersion::Base);
        assert_eq!(sq.joins.len(), 1);
        assert_eq!(sq.joins[0].left_keys, vec![1]); // tc.z (flattened col 1)
        assert_eq!(sq.joins[0].right_keys, vec![0]); // arc.z
        assert_eq!(sq.head_exprs, vec![Expr::Col(0), Expr::Col(3)]);
        assert_eq!(sq.width, 4);
    }

    #[test]
    fn nonlinear_rule_generates_one_subquery_per_delta_position() {
        // CSPA rule: valueFlow(x,y) :- valueFlow(x,z), valueFlow(z,y).
        let p = compiled(crate::programs::CSPA);
        let rec = p.strata.iter().find(|s| s.recursive).unwrap();
        let vf = rec.idbs.iter().find(|i| i.rel == "valueFlow").unwrap();
        // Rules for valueFlow in the SCC: vf(x,y) :- assign(x,z), memoryAlias(z,y)
        // (1 recursive atom) and vf(x,y) :- vf(x,z), vf(z,y) (2 recursive atoms)
        // → 1 + 2 subqueries.
        assert_eq!(vf.subqueries.len(), 3);
        let nonlinear: Vec<&SubQuery> = vf
            .subqueries
            .iter()
            .filter(|s| {
                s.scans.len() == 2 && s.scans[0].rel == "valueFlow" && s.scans[1].rel == "valueFlow"
            })
            .collect();
        assert_eq!(nonlinear.len(), 2);
        let versions: Vec<(AtomVersion, AtomVersion)> = nonlinear
            .iter()
            .map(|s| (s.scans[0].version, s.scans[1].version))
            .collect();
        assert!(versions.contains(&(AtomVersion::Delta, AtomVersion::Old)));
        assert!(versions.contains(&(AtomVersion::Full, AtomVersion::Delta)));
    }

    #[test]
    fn constants_and_repeats_become_scan_filters() {
        let p = compiled("r(x) :- s(x, 5, x).");
        let sq = &p.strata[0].idbs[0].subqueries[0];
        assert_eq!(sq.scans[0].filters.len(), 2);
        assert_eq!(
            sq.scans[0].filters[0],
            Predicate {
                lhs: Expr::Col(1),
                op: CmpOp::Eq,
                rhs: Expr::Const(5)
            }
        );
        assert_eq!(
            sq.scans[0].filters[1],
            Predicate {
                lhs: Expr::Col(2),
                op: CmpOp::Eq,
                rhs: Expr::Col(0)
            }
        );
    }

    #[test]
    fn comparisons_become_residual() {
        let p = compiled(crate::programs::SG);
        let seed = &p.strata[0].idbs[0].subqueries[0];
        assert_eq!(seed.residual.len(), 1);
        assert_eq!(
            seed.residual[0],
            Predicate {
                lhs: Expr::Col(1),
                op: CmpOp::Ne,
                rhs: Expr::Col(3)
            }
        );
    }

    #[test]
    fn negation_becomes_anti_join() {
        let p = compiled(crate::programs::NTC);
        let ntc = p
            .strata
            .iter()
            .flat_map(|s| &s.idbs)
            .find(|i| i.rel == "ntc")
            .unwrap();
        let sq = &ntc.subqueries[0];
        assert_eq!(sq.negations.len(), 1);
        let neg = &sq.negations[0];
        assert_eq!(neg.rel, "tc");
        assert_eq!(neg.left_keys, vec![0, 1]); // node(x) col, node(y) col
        assert_eq!(neg.right_keys, vec![0, 1]);
        // node(x), node(y) share no variables → cross join.
        assert!(sq.joins[0].left_keys.is_empty());
    }

    #[test]
    fn aggregated_idb_shape() {
        let p = compiled(crate::programs::CC);
        let rec = p.strata.iter().find(|s| s.recursive).unwrap();
        let cc3 = &rec.idbs[0];
        assert_eq!(cc3.rel, "cc3");
        let agg = cc3.agg.as_ref().unwrap();
        assert_eq!(agg.group_positions, vec![0]);
        assert_eq!(agg.agg_positions, vec![1]);
        assert_eq!(agg.funcs, vec![AggFunc::Min]);
        // Pre-agg layout: group (y) then agg arg (z).
        let sq = &cc3.subqueries[0];
        assert_eq!(sq.head_exprs.len(), 2);
    }

    #[test]
    fn sssp_arithmetic_in_agg_argument() {
        let p = compiled(crate::programs::SSSP);
        let rec = p.strata.iter().find(|s| s.recursive).unwrap();
        let sq = &rec.idbs[0].subqueries[0];
        // head sssp2(y, MIN(d1+d2)): group y, agg arg d1+d2.
        assert_eq!(sq.head_exprs[0], Expr::Col(3)); // y in arc(x,y,d2)
        assert_eq!(sq.head_exprs[1], Expr::add(Expr::Col(1), Expr::Col(4)));
    }

    #[test]
    fn andersen_ternary_rule_joins() {
        let p = compiled(crate::programs::ANDERSEN);
        let rec = p.strata.iter().find(|s| s.recursive).unwrap();
        let pt = &rec.idbs[0];
        // Rules: assign (1 rec atom) + load (2) + store (2) → 5 subqueries.
        assert_eq!(pt.subqueries.len(), 5);
        for sq in &pt.subqueries {
            assert!(sq.delta_scan.is_some());
            // Each join has at least one key (no cross joins in Andersen).
            for j in &sq.joins {
                assert!(!j.left_keys.is_empty());
            }
        }
    }

    #[test]
    fn gyo_classifies_hypergraphs() {
        // Chains and stars are acyclic.
        assert!(!hypergraph_is_cyclic(&[vec![0, 1], vec![1, 2]]));
        assert!(!hypergraph_is_cyclic(&[vec![0, 1], vec![0, 2], vec![0, 3]]));
        // A path of three atoms is acyclic too.
        assert!(!hypergraph_is_cyclic(&[vec![0, 1], vec![1, 2], vec![2, 3]]));
        // Self-join shape: two atoms over the same variable pair collapse.
        assert!(!hypergraph_is_cyclic(&[vec![0, 1], vec![0, 1]]));
        // One wide atom covering a triangle's variables absorbs it.
        assert!(!hypergraph_is_cyclic(&[
            vec![0, 1],
            vec![1, 2],
            vec![0, 2],
            vec![0, 1, 2]
        ]));
        // The triangle and longer cycles are cyclic.
        assert!(hypergraph_is_cyclic(&[vec![0, 1], vec![1, 2], vec![0, 2]]));
        assert!(hypergraph_is_cyclic(&[
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![3, 0]
        ]));
        // Empty and single-edge hypergraphs are trivially acyclic.
        assert!(!hypergraph_is_cyclic(&[]));
        assert!(!hypergraph_is_cyclic(&[vec![0, 1, 2]]));
    }

    #[test]
    fn triangle_body_gets_a_wcoj_plan() {
        let p = compiled(crate::programs::TRIANGLE);
        let sq = &p.strata[0].idbs[0].subqueries[0];
        let wp = sq.wcoj.as_ref().expect("cyclic body plans WCOJ");
        assert_eq!(wp.levels, 3);
        // Each scan sorts by both its columns; every level intersects two
        // of the three scans and binds two flattened slots.
        assert_eq!(wp.scan_cols, vec![vec![0, 1]; 3]);
        for level in 0..3 {
            assert_eq!(wp.level_scans[level].len(), 2);
            assert_eq!(wp.level_slots[level].len(), 2);
        }
        // Every flattened slot is bound exactly once across the levels.
        let mut slots: Vec<usize> = wp.level_slots.iter().flatten().copied().collect();
        slots.sort_unstable();
        assert_eq!(slots, (0..6).collect::<Vec<_>>());
        // The binary chain stays compiled alongside for the ablation arm.
        assert_eq!(sq.joins.len(), 2);
    }

    #[test]
    fn acyclic_and_small_bodies_keep_binary_plans() {
        // Linear TC: two-atom body.
        let p = compiled(crate::programs::TC);
        for s in &p.strata {
            for idb in &s.idbs {
                for sq in &idb.subqueries {
                    assert!(sq.wcoj.is_none(), "acyclic body must not plan WCOJ");
                }
            }
        }
        // Three-atom path r(x,y,w) :- a(x,z), b(z,y), c(y,w): acyclic.
        let p = compiled("r(x, y, w) :- a(x, z), b(z, y), c(y, w).");
        assert!(p.strata[0].idbs[0].subqueries[0].wcoj.is_none());
    }

    #[test]
    fn filtered_and_negated_cyclic_bodies_are_ineligible() {
        // A constant argument forces a scan filter → no WCOJ.
        let p = compiled("r(x, y) :- a(x, y), a(y, z), a(x, 5).");
        assert!(p.strata[0].idbs[0].subqueries[0].wcoj.is_none());
        // A negation after a cyclic positive body → no WCOJ.
        let p = compiled(
            "t(x, y) :- e(x, y).\n\
             r(x, y, z) :- e(x, y), e(y, z), e(x, z), !t(z, x).",
        );
        let r = p
            .strata
            .iter()
            .flat_map(|s| &s.idbs)
            .find(|i| i.rel == "r")
            .unwrap();
        assert!(r.subqueries[0].wcoj.is_none());
        // The same body without the negation qualifies.
        let p = compiled("r(x, y, z) :- e(x, y), e(y, z), e(x, z).");
        assert!(p.strata[0].idbs[0].subqueries[0].wcoj.is_some());
    }

    #[test]
    fn recursive_cyclic_rule_plans_wcoj_per_subquery() {
        // A cyclic recursive body: every ∆ rewriting keeps the same
        // hypergraph, so each subquery carries its own WCOJ plan.
        let p = compiled(
            "t(x, y) :- arc(x, y).\n\
             t(x, z) :- t(x, y), t(y, z), arc(x, z).",
        );
        let rec = p.strata.iter().find(|s| s.recursive).unwrap();
        let t = &rec.idbs[0];
        let cyclic: Vec<&SubQuery> = t.subqueries.iter().filter(|s| s.scans.len() == 3).collect();
        assert_eq!(cyclic.len(), 2, "one subquery per ∆ position");
        for sq in cyclic {
            let wp = sq.wcoj.as_ref().expect("cyclic recursive body");
            assert_eq!(wp.levels, 3);
        }
    }

    #[test]
    fn wcoj_variable_order_puts_most_shared_first() {
        // Triangle x-y-z plus a pendant atom on y: y is the most shared
        // variable (3 atoms), so it leads the order and the first level
        // intersects its three scans.
        let p = compiled("r(x, y, z, w) :- a(x, y), b(y, z), c(z, x), d(y, w).");
        let sq = &p.strata[0].idbs[0].subqueries[0];
        let wp = sq.wcoj.as_ref().expect("triangle core is cyclic");
        assert_eq!(wp.levels, 4);
        assert_eq!(wp.level_scans[0].len(), 3, "y leads the order");
        // The pendant variable w is least shared: last level, one scan.
        assert_eq!(wp.level_scans[3].len(), 1);
    }

    #[test]
    fn relations_declared_with_idb_flag() {
        let p = compiled(crate::programs::TC);
        assert!(p
            .relations
            .iter()
            .any(|r| r.name == "arc" && !r.is_idb && r.arity == 2));
        assert!(p.relations.iter().any(|r| r.name == "tc" && r.is_idb));
    }
}
