//! Hand-written lexer for `.datalog` sources.

use recstep_common::{Error, Result, Value};

/// Token kinds of the surface syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier (relation, variable or aggregate name).
    Ident(String),
    /// Integer literal (always non-negative here; unary minus is syntax).
    Int(Value),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:-`
    Turnstile,
    /// `!`
    Bang,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `_` (anonymous variable)
    Underscore,
    /// `.input` / `.output` directives (keyword after the dot).
    Directive(String),
    /// End of input.
    Eof,
}

/// A token plus its source position (1-based).
#[derive(Clone, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Tokenize a program source. `//`, `#` and `%` start line comments;
/// `/* ... */` blocks nest one level deep (no nesting inside).
pub fn lex(src: &str) -> Result<Vec<Spanned>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;
    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }
    while i < bytes.len() {
        let (l0, c0) = (line, col);
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'#' | b'%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(Error::Parse {
                            line: l0,
                            col: c0,
                            msg: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            b'(' => {
                out.push(Spanned {
                    tok: Tok::LParen,
                    line: l0,
                    col: c0,
                });
                bump!();
            }
            b')' => {
                out.push(Spanned {
                    tok: Tok::RParen,
                    line: l0,
                    col: c0,
                });
                bump!();
            }
            b',' => {
                out.push(Spanned {
                    tok: Tok::Comma,
                    line: l0,
                    col: c0,
                });
                bump!();
            }
            b'+' => {
                out.push(Spanned {
                    tok: Tok::Plus,
                    line: l0,
                    col: c0,
                });
                bump!();
            }
            b'-' => {
                out.push(Spanned {
                    tok: Tok::Minus,
                    line: l0,
                    col: c0,
                });
                bump!();
            }
            b'*' => {
                out.push(Spanned {
                    tok: Tok::Star,
                    line: l0,
                    col: c0,
                });
                bump!();
            }
            b'=' => {
                out.push(Spanned {
                    tok: Tok::Eq,
                    line: l0,
                    col: c0,
                });
                bump!();
            }
            b'!' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'=' {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::Ne,
                        line: l0,
                        col: c0,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Bang,
                        line: l0,
                        col: c0,
                    });
                }
            }
            b'<' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'=' {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::Le,
                        line: l0,
                        col: c0,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Lt,
                        line: l0,
                        col: c0,
                    });
                }
            }
            b'>' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'=' {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::Ge,
                        line: l0,
                        col: c0,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Gt,
                        line: l0,
                        col: c0,
                    });
                }
            }
            b':' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'-' {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::Turnstile,
                        line: l0,
                        col: c0,
                    });
                } else {
                    return Err(Error::Parse {
                        line: l0,
                        col: c0,
                        msg: "expected ':-'".into(),
                    });
                }
            }
            b'.' => {
                bump!();
                // `.input` / `.output` directive keyword?
                if i < bytes.len() && (bytes[i].is_ascii_alphabetic()) {
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        bump!();
                    }
                    let word = std::str::from_utf8(&bytes[start..i]).unwrap().to_string();
                    match word.as_str() {
                        "input" | "output" => out.push(Spanned {
                            tok: Tok::Directive(word),
                            line: l0,
                            col: c0,
                        }),
                        _ => {
                            return Err(Error::Parse {
                                line: l0,
                                col: c0,
                                msg: format!("unknown directive '.{word}'"),
                            })
                        }
                    }
                } else {
                    out.push(Spanned {
                        tok: Tok::Dot,
                        line: l0,
                        col: c0,
                    });
                }
            }
            b'_' if i + 1 >= bytes.len()
                || !(bytes[i + 1].is_ascii_alphanumeric() || bytes[i + 1] == b'_') =>
            {
                out.push(Spanned {
                    tok: Tok::Underscore,
                    line: l0,
                    col: c0,
                });
                bump!();
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
                let text = std::str::from_utf8(&bytes[start..i]).unwrap();
                let v: Value = text.parse().map_err(|_| Error::Parse {
                    line: l0,
                    col: c0,
                    msg: format!("integer literal out of range: {text}"),
                })?;
                out.push(Spanned {
                    tok: Tok::Int(v),
                    line: l0,
                    col: c0,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                let word = std::str::from_utf8(&bytes[start..i]).unwrap().to_string();
                out.push(Spanned {
                    tok: Tok::Ident(word),
                    line: l0,
                    col: c0,
                });
            }
            other => {
                return Err(Error::Parse {
                    line: l0,
                    col: c0,
                    msg: format!("unexpected character '{}'", other as char),
                })
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lex_rule() {
        assert_eq!(
            toks("tc(x,y) :- arc(x,y)."),
            vec![
                Tok::Ident("tc".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::Comma,
                Tok::Ident("y".into()),
                Tok::RParen,
                Tok::Turnstile,
                Tok::Ident("arc".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::Comma,
                Tok::Ident("y".into()),
                Tok::RParen,
                Tok::Dot,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lex_operators_and_comments() {
        assert_eq!(
            toks("x != y, a <= 3 // trailing\n# hash\n% percent\n/* block */ b >= _"),
            vec![
                Tok::Ident("x".into()),
                Tok::Ne,
                Tok::Ident("y".into()),
                Tok::Comma,
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Int(3),
                Tok::Ident("b".into()),
                Tok::Ge,
                Tok::Underscore,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lex_directives() {
        assert_eq!(
            toks(".input arc .output tc"),
            vec![
                Tok::Directive("input".into()),
                Tok::Ident("arc".into()),
                Tok::Directive("output".into()),
                Tok::Ident("tc".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lex_arith() {
        assert_eq!(
            toks("d1 + d2 - 3 * x"),
            vec![
                Tok::Ident("d1".into()),
                Tok::Plus,
                Tok::Ident("d2".into()),
                Tok::Minus,
                Tok::Int(3),
                Tok::Star,
                Tok::Ident("x".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn underscore_prefixed_names_are_idents() {
        assert_eq!(
            toks("_x _"),
            vec![Tok::Ident("_x".into()), Tok::Underscore, Tok::Eof]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = lex("a\n  @").unwrap_err();
        match err {
            Error::Parse { line, col, .. } => {
                assert_eq!((line, col), (2, 3));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(lex("/* no end").is_err());
        assert!(lex(": x").is_err());
        assert!(lex(".bogus x").is_err());
    }
}
