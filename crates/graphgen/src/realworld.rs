//! Scaled stand-ins for the real-world graphs of Table 3.
//!
//! The paper evaluates on livejournal, orkut, arabic and twitter — web and
//! social crawls with tens of millions of vertices and up to 1.5 B edges.
//! Those crawls cannot ship with this repository; per DESIGN.md's
//! substitution table we generate RMAT graphs whose *relative* ordering of
//! sizes and whose skewed-degree regime match, scaled to laptop memory.
//! REACH/CC/SSSP costs are O(m), O(dm) and O(nm) (paper §6.3), so the
//! cross-dataset shape — which dataset is heavier, where baselines OOM —
//! is preserved under uniform scaling.

use crate::rmat::rmat;

/// One real-world stand-in dataset.
#[derive(Clone, Copy, Debug)]
pub struct RealWorldSpec {
    /// Stand-in name (`<paper-name>-sim`).
    pub name: &'static str,
    /// Paper's vertex count for reference.
    pub paper_vertices: u64,
    /// Paper's edge count for reference.
    pub paper_edges: u64,
    /// Scaled vertex count.
    pub n: u32,
    /// Scaled edge count.
    pub m: usize,
}

/// The four stand-ins at a given divisor (`scale = 1` keeps the paper's
/// sizes — do not do that on a laptop for twitter).
pub fn paper_realworld_specs(scale: u32) -> Vec<RealWorldSpec> {
    // (name, paper n, paper m) from the SNAP / WebGraph statistics the
    // paper's reference [23] uses.
    let raw: [(&str, u64, u64); 4] = [
        ("livejournal-sim", 4_847_571, 68_993_773),
        ("orkut-sim", 3_072_441, 117_185_083),
        ("arabic-sim", 22_744_080, 639_999_458),
        ("twitter-sim", 41_652_230, 1_468_365_182),
    ];
    let s = scale.max(1) as u64;
    raw.iter()
        .map(|&(name, pn, pm)| RealWorldSpec {
            name,
            paper_vertices: pn,
            paper_edges: pm,
            n: (pn / s).max(64) as u32,
            m: (pm / s).max(640) as usize,
        })
        .collect()
}

impl RealWorldSpec {
    /// Materialize the stand-in's edge list.
    pub fn generate(&self, seed: u64) -> Vec<(u32, u32)> {
        rmat(self.n, self.m, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_ordering_matches_paper() {
        let specs = paper_realworld_specs(1000);
        assert_eq!(specs.len(), 4);
        // Edge counts keep the paper's ordering: lj < orkut < arabic < twitter.
        for w in specs.windows(2) {
            assert!(w[0].m < w[1].m, "{} !< {}", w[0].name, w[1].name);
        }
        // Orkut has fewer vertices but more edges than livejournal.
        assert!(specs[1].n < specs[0].n);
        assert!(specs[1].m > specs[0].m);
    }

    #[test]
    fn generation_respects_spec() {
        let spec = paper_realworld_specs(10_000)[0];
        let edges = spec.generate(4);
        assert_eq!(edges.len(), spec.m);
        assert!(edges.iter().all(|&(s, t)| s < spec.n && t < spec.n));
    }
}
