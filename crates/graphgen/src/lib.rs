//! Workload generators for every dataset family of the paper (Table 3).
//!
//! * [`gnp`] — the `Gn-p` GTgraph-style uniform random graphs used for TC
//!   and SG (`G5K` … `G80K`, p defaulting to 0.001);
//! * [`rmat`] — RMAT graphs (`RMAT-1M` … `RMAT-128M`: n vertices, 10n
//!   edges) used for REACH/CC/SSSP scaling;
//! * [`realworld`] — scaled stand-ins for the livejournal / orkut / arabic /
//!   twitter crawls (see DESIGN.md's substitution table);
//! * [`program_analysis`] — synthetic inputs for Andersen's analysis
//!   (datasets 1–7) and the CSPA/CSDA system-program graphs
//!   (linux / postgresql / httpd stand-ins).
//!
//! All generators are deterministic given a seed.

pub mod gnp;
pub mod program_analysis;
pub mod realworld;
pub mod rmat;

use recstep_common::Value;

/// Convert `u32` edge pairs to engine values.
pub fn as_values(edges: &[(u32, u32)]) -> Vec<(Value, Value)> {
    edges
        .iter()
        .map(|&(a, b)| (a as Value, b as Value))
        .collect()
}

/// Attach deterministic pseudo-random weights in `1..=max_w` to edges
/// (for SSSP).
pub fn with_weights(edges: &[(u32, u32)], max_w: u64, seed: u64) -> Vec<(Value, Value, Value)> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    edges
        .iter()
        .map(|&(a, b)| (a as Value, b as Value, rng.gen_range(1..=max_w) as Value))
        .collect()
}

/// Number of distinct vertices mentioned by an edge list.
pub fn touched_vertices(edges: &[(u32, u32)]) -> usize {
    let mut seen = recstep_common::hash::FxHashSet::default();
    for &(a, b) in edges {
        seen.insert(a);
        seen.insert(b);
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_in_range_and_deterministic() {
        let edges = [(0u32, 1u32), (1, 2), (2, 0)];
        let a = with_weights(&edges, 5, 9);
        let b = with_weights(&edges, 5, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(_, _, w)| (1..=5).contains(&w)));
    }

    #[test]
    fn touched_vertices_counts_endpoints() {
        assert_eq!(touched_vertices(&[(0, 1), (1, 2), (5, 5)]), 4);
        assert_eq!(touched_vertices(&[]), 0);
    }
}
