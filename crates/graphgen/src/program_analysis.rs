//! Synthetic program-analysis inputs (paper §6.2).
//!
//! * **Andersen's analysis**: the paper generates seven datasets "ranging
//!   from small size to large size based on the characteristics of a tiny
//!   real dataset", with the number of variables growing from 1 to 7. We
//!   reproduce that recipe: a variable universe with a handful of hub
//!   variables (pointer-heavy globals), and `addressOf`/`assign`/`load`/
//!   `store` edges at fixed per-variable ratios.
//! * **CSPA** (linux / postgresql / httpd stand-ins): `assign` and
//!   `dereference` edges arranged in function-local clusters with sparse
//!   cross-cluster assigns — few fixpoint iterations with large non-linear
//!   intermediates, the regime the paper reports for CSPA.
//! * **CSDA** stand-ins: long def-use chains (`arc`) seeded with
//!   `nullEdge` facts — ~chain-length iterations with tiny deltas, the
//!   regime where per-iteration overhead dominates (the one workload where
//!   the paper's RecStep loses).

use rand::{Rng, SeedableRng};
use recstep_common::Value;

/// Input relations for one Andersen run.
#[derive(Clone, Debug, Default)]
pub struct AndersenInput {
    /// `addressOf(y, x)`: y = &x.
    pub address_of: Vec<(Value, Value)>,
    /// `assign(y, z)`: y = z.
    pub assign: Vec<(Value, Value)>,
    /// `load(y, x)`: y = *x.
    pub load: Vec<(Value, Value)>,
    /// `store(y, x)`: *y = x.
    pub store: Vec<(Value, Value)>,
}

impl AndersenInput {
    /// Total input tuples.
    pub fn len(&self) -> usize {
        self.address_of.len() + self.assign.len() + self.load.len() + self.store.len()
    }

    /// True if no tuples were generated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Generate an Andersen input over `vars` variables.
///
/// Ratios follow pointer-intensive C code: ~0.4 `addressOf`, ~0.8 `assign`,
/// ~0.25 `load`, ~0.2 `store` per variable; 2% of variables are hubs that
/// attract a fifth of all edge endpoints (globals / frequently-aliased
/// pointers), which is what makes the points-to sets grow.
pub fn andersen(vars: u32, seed: u64) -> AndersenInput {
    let vars = vars.max(4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let hubs = (vars / 50).max(1);
    let pick = |rng: &mut rand::rngs::StdRng| -> Value {
        if rng.gen_bool(0.2) {
            rng.gen_range(0..hubs) as Value
        } else {
            rng.gen_range(0..vars) as Value
        }
    };
    let pairs = |rng: &mut rand::rngs::StdRng, m: usize| -> Vec<(Value, Value)> {
        (0..m).map(|_| (pick(rng), pick(rng))).collect()
    };
    let v = vars as usize;
    AndersenInput {
        address_of: pairs(&mut rng, v * 2 / 5),
        assign: pairs(&mut rng, v * 4 / 5),
        load: pairs(&mut rng, v / 4),
        store: pairs(&mut rng, v / 5),
    }
}

/// The paper's seven Andersen datasets: variable counts grow from 1 to 7.
/// `scale` divides the counts.
pub fn paper_andersen_specs(scale: u32) -> Vec<(String, u32)> {
    let s = scale.max(1);
    (1..=7u32)
        .map(|i| (format!("dataset {i}"), (6_000 * i / s).max(64)))
        .collect()
}

/// Input relations for one CSPA run.
#[derive(Clone, Debug, Default)]
pub struct CspaInput {
    /// `assign(x, y)`.
    pub assign: Vec<(Value, Value)>,
    /// `dereference(x, y)`.
    pub dereference: Vec<(Value, Value)>,
}

/// Generate a CSPA input: `clusters` function-local variable groups of size
/// `cluster_size`, dense assigns inside a cluster, sparse cross-cluster
/// assigns, plus dereference edges.
pub fn cspa(clusters: u32, cluster_size: u32, seed: u64) -> CspaInput {
    let clusters = clusters.max(1);
    let cluster_size = cluster_size.max(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = clusters as u64 * cluster_size as u64;
    let mut assign = Vec::new();
    let mut dereference = Vec::new();
    for c in 0..clusters as u64 {
        let base = c * cluster_size as u64;
        // Local assign chain with shortcuts: value flow within the function.
        for i in 0..cluster_size as u64 - 1 {
            assign.push(((base + i) as Value, (base + i + 1) as Value));
            if rng.gen_bool(0.3) {
                let j = rng.gen_range(0..cluster_size as u64);
                assign.push(((base + i) as Value, (base + j) as Value));
            }
        }
        // Dereference pairs inside the cluster (pointer / pointee).
        for _ in 0..cluster_size / 3 {
            let a = base + rng.gen_range(0..cluster_size as u64);
            let b = base + rng.gen_range(0..cluster_size as u64);
            dereference.push((a as Value, b as Value));
        }
        // Sparse cross-cluster assigns (calls / globals).
        if clusters > 1 {
            for _ in 0..2 {
                let other = rng.gen_range(0..n);
                assign.push((
                    (base + rng.gen_range(0..cluster_size as u64)) as Value,
                    other as Value,
                ));
            }
        }
    }
    CspaInput {
        assign,
        dereference,
    }
}

/// Input relations for one CSDA run.
#[derive(Clone, Debug, Default)]
pub struct CsdaInput {
    /// Control/data-flow edges `arc(w, y)`.
    pub arc: Vec<(Value, Value)>,
    /// Null-source seeds `nullEdge(x, y)`.
    pub null_edge: Vec<(Value, Value)>,
}

/// Generate a CSDA input: `chains` def-use chains of length `chain_len`,
/// cross-linked sparsely, with one null seed per chain head. Fixpoint depth
/// is ~`chain_len` with small per-iteration deltas.
pub fn csda(chains: u32, chain_len: u32, seed: u64) -> CsdaInput {
    let chains = chains.max(1);
    let chain_len = chain_len.max(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut arc = Vec::new();
    let mut null_edge = Vec::new();
    for c in 0..chains as u64 {
        let base = c * chain_len as u64;
        for i in 0..chain_len as u64 - 1 {
            arc.push(((base + i) as Value, (base + i + 1) as Value));
        }
        // Rare skip edges within the chain (branch joins).
        for _ in 0..chain_len / 50 {
            let i = rng.gen_range(0..chain_len as u64 - 1);
            let j = rng.gen_range(i + 1..chain_len as u64);
            arc.push(((base + i) as Value, (base + j) as Value));
        }
        null_edge.push((base as Value, base as Value));
    }
    CsdaInput { arc, null_edge }
}

/// The paper's three system programs as (name, CSPA spec, CSDA spec)
/// stand-ins, ordered like Table 3; `scale` divides the sizes. Relative
/// sizes follow the Graspan-reported graph sizes (linux ≫ postgresql >
/// httpd).
pub struct SystemProgramSpec {
    /// Stand-in name.
    pub name: &'static str,
    /// CSPA clusters.
    pub cspa_clusters: u32,
    /// CSPA cluster size.
    pub cspa_cluster_size: u32,
    /// CSDA chains.
    pub csda_chains: u32,
    /// CSDA chain length (≈ fixpoint depth).
    pub csda_chain_len: u32,
}

/// linux / postgresql / httpd stand-ins.
pub fn paper_system_programs(scale: u32) -> Vec<SystemProgramSpec> {
    let s = scale.max(1);
    let d = |v: u32| (v / s).max(4);
    vec![
        SystemProgramSpec {
            name: "linux-sim",
            cspa_clusters: d(3_000),
            cspa_cluster_size: 12,
            csda_chains: d(1_200),
            csda_chain_len: 1_000,
        },
        SystemProgramSpec {
            name: "postgresql-sim",
            cspa_clusters: d(1_200),
            cspa_cluster_size: 12,
            csda_chains: d(500),
            csda_chain_len: 800,
        },
        SystemProgramSpec {
            name: "httpd-sim",
            cspa_clusters: d(500),
            cspa_cluster_size: 12,
            csda_chains: d(220),
            csda_chain_len: 600,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn andersen_ratios_and_determinism() {
        let a = andersen(1000, 3);
        assert_eq!(a.address_of.len(), 400);
        assert_eq!(a.assign.len(), 800);
        assert_eq!(a.load.len(), 250);
        assert_eq!(a.store.len(), 200);
        assert_eq!(a.len(), 1650);
        let b = andersen(1000, 3);
        assert_eq!(a.assign, b.assign);
        assert!(a.assign.iter().all(|&(x, y)| x < 1000 && y < 1000));
    }

    #[test]
    fn andersen_hubs_are_hot() {
        let a = andersen(5000, 9);
        let hubs = 5000 / 50;
        let hub_endpoints = a
            .assign
            .iter()
            .flat_map(|&(x, y)| [x, y])
            .filter(|&v| v < hubs as Value)
            .count();
        let total = a.assign.len() * 2;
        // ~20% hub draw plus uniform mass: expect >15% of endpoints on hubs.
        assert!(hub_endpoints as f64 > 0.15 * total as f64);
    }

    #[test]
    fn paper_andersen_sizes_grow() {
        let specs = paper_andersen_specs(10);
        assert_eq!(specs.len(), 7);
        for w in specs.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn cspa_clusters_are_local() {
        let input = cspa(10, 8, 5);
        assert!(!input.assign.is_empty());
        assert!(!input.dereference.is_empty());
        // Dereference edges never cross clusters.
        for &(a, b) in &input.dereference {
            assert_eq!(a / 8, b / 8, "deref ({a},{b}) crosses clusters");
        }
    }

    #[test]
    fn csda_chains_have_expected_shape() {
        let input = csda(3, 100, 7);
        assert_eq!(input.null_edge.len(), 3);
        // At least the backbone edges exist.
        assert!(input.arc.len() >= 3 * 99);
        // All skip edges go forward (acyclic chains → bounded iterations).
        for &(a, b) in &input.arc {
            assert!(
                b > a || !((b - a) as u64).is_multiple_of(100),
                "unexpected edge ({a},{b})"
            );
        }
    }

    #[test]
    fn system_program_sizes_ordered() {
        let specs = paper_system_programs(10);
        assert_eq!(specs.len(), 3);
        assert!(specs[0].cspa_clusters > specs[1].cspa_clusters);
        assert!(specs[1].cspa_clusters > specs[2].cspa_clusters);
        assert!(specs[0].csda_chain_len > specs[2].csda_chain_len);
    }
}
