//! RMAT recursive-matrix graphs.
//!
//! "RMAT-n represents the graph that has n vertices and 10n directed edges"
//! (paper §6.2, following the BigDatalog specification). The generator uses
//! the standard (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) quadrant
//! probabilities, producing the skewed degree distributions that drive the
//! REACH/CC/SSSP costs.

use rand::{Rng, SeedableRng};

/// Standard RMAT quadrant probabilities.
pub const A: f64 = 0.57;
/// Standard RMAT quadrant probabilities.
pub const B: f64 = 0.19;
/// Standard RMAT quadrant probabilities.
pub const C: f64 = 0.19;

/// Generate an RMAT graph over `n` vertices (`n` rounded up to a power of
/// two internally; emitted ids are folded into `0..n`) with `m` edges.
pub fn rmat(n: u32, m: usize, seed: u64) -> Vec<(u32, u32)> {
    assert!(n > 0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let levels = 32 - (n - 1).leading_zeros();
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let mut src = 0u32;
        let mut dst = 0u32;
        for _ in 0..levels {
            src <<= 1;
            dst <<= 1;
            let r: f64 = rng.gen();
            if r < A {
                // top-left
            } else if r < A + B {
                dst |= 1;
            } else if r < A + B + C {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        edges.push((src % n, dst % n));
    }
    edges
}

/// The paper's RMAT family: `RMAT-{k}M` has `k` million vertices and `10k`
/// million edges. `scale` divides the vertex counts (`scale = 1` is the
/// paper's size).
#[derive(Clone, Copy, Debug)]
pub struct RmatSpec {
    /// Display name (paper's dataset label).
    pub name: &'static str,
    /// Vertex count.
    pub n: u32,
    /// Edge count (10 × n).
    pub m: usize,
}

/// RMAT-1M .. RMAT-128M, scaled down by `scale`.
pub fn paper_rmat_specs(scale: u32) -> Vec<RmatSpec> {
    let s = scale.max(1);
    let names = [
        "RMAT-1M",
        "RMAT-2M",
        "RMAT-4M",
        "RMAT-8M",
        "RMAT-16M",
        "RMAT-32M",
        "RMAT-64M",
        "RMAT-128M",
    ];
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let n = ((1_000_000u64 << i) / s as u64).max(64) as u32;
            RmatSpec {
                name,
                n,
                m: n as usize * 10,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_and_range() {
        let edges = rmat(1000, 5000, 3);
        assert_eq!(edges.len(), 5000);
        assert!(edges.iter().all(|&(s, t)| s < 1000 && t < 1000));
    }

    #[test]
    fn deterministic() {
        assert_eq!(rmat(512, 1000, 1), rmat(512, 1000, 1));
        assert_ne!(rmat(512, 1000, 1), rmat(512, 1000, 2));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let n = 1024u32;
        let edges = rmat(n, (n as usize) * 10, 11);
        let mut deg = vec![0usize; n as usize];
        for &(s, _) in &edges {
            deg[s as usize] += 1;
        }
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = deg[..n as usize / 10].iter().sum();
        let total: usize = deg.iter().sum();
        // RMAT hubs: the top 10% of vertices own far more than 10% of edges.
        assert!(
            top_decile as f64 > 0.3 * total as f64,
            "top decile {top_decile} of {total}"
        );
    }

    #[test]
    fn paper_specs_double_each_step() {
        let specs = paper_rmat_specs(1000);
        assert_eq!(specs.len(), 8);
        assert_eq!(specs[0].n, 1000);
        assert_eq!(specs[1].n, 2000);
        assert_eq!(specs[7].n, 128_000);
        assert!(specs.iter().all(|s| s.m == s.n as usize * 10));
    }

    #[test]
    fn non_power_of_two_vertex_count() {
        let edges = rmat(1000, 100, 5);
        assert!(edges.iter().all(|&(s, t)| s < 1000 && t < 1000));
    }
}
