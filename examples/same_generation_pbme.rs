//! Parallel bit-matrix evaluation (PBME, paper §5.3) on same generation:
//! dense Gn-p graphs where tuple-based evaluation drowns in intermediate
//! results while the bit matrix stays flat.
//!
//! ```sh
//! cargo run --release --example same_generation_pbme
//! ```

use recstep::{Config, Database, Engine, PbmeMode};
use recstep_graphgen::{as_values, gnp::gnp};
use std::time::Instant;

fn main() -> recstep::Result<()> {
    let n = 1_500u32;
    let edges = as_values(&gnp(n, 0.004, 9));
    println!(
        "G{n} graph with {} edges (dense, small domain)",
        edges.len()
    );

    let mut results = Vec::new();
    for (label, cfg) in [
        (
            "tuple engine (PBME off)",
            Config::default().pbme(PbmeMode::Off),
        ),
        ("PBME", Config::default().pbme(PbmeMode::Force)),
        (
            "PBME + coordination",
            Config::default()
                .pbme(PbmeMode::Force)
                .pbme_coordination(Some(1024)),
        ),
    ] {
        let engine = Engine::from_config(cfg.mem_budget(2 << 30))?;
        let sg = engine.prepare(recstep::programs::SG)?;
        let mut db = Database::new()?;
        db.load_edges("arc", &edges)?;
        let t0 = Instant::now();
        match sg.run(&mut db) {
            Ok(stats) => {
                println!(
                    "  {label:<26} {:>8.3}s  sg rows {:>9}  matrix {:>10}  work orders {}",
                    t0.elapsed().as_secs_f64(),
                    db.row_count("sg"),
                    recstep_common::mem::fmt_bytes(stats.pbme_matrix_bytes),
                    stats.coord_orders_posted,
                );
                results.push(db.row_count("sg"));
            }
            Err(e) => println!("  {label:<26} failed: {e}"),
        }
    }
    assert!(
        results.windows(2).all(|w| w[0] == w[1]),
        "all variants agree"
    );
    Ok(())
}
