//! Quickstart: evaluate transitive closure over a small graph, inspect the
//! results, and see what the engine did.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use recstep::{Config, RecStep};

fn main() -> recstep::Result<()> {
    // A Datalog program (Example 1 of the paper): the transitive closure of
    // a directed graph given as the EDB relation `arc`.
    let program = "
        tc(x, y) :- arc(x, y).
        tc(x, y) :- tc(x, z), arc(z, y).
    ";

    // Engine with defaults: all paper optimizations on (UIE, OOF, DSD,
    // EOST, FAST-DEDUP), PBME auto-detection, all cores.
    let mut engine = RecStep::new(Config::default())?;

    // Load the input graph: a chain with a shortcut and a cycle.
    engine.load_edges("arc", &[(0, 1), (1, 2), (2, 3), (0, 2), (3, 0)])?;

    let stats = engine.run_source(program)?;

    println!("tc has {} facts:", engine.row_count("tc"));
    let mut rows = engine.rows("tc").unwrap();
    rows.sort();
    for row in &rows {
        println!("  tc({}, {})", row[0], row[1]);
    }

    println!("\nengine report:");
    println!("  strata evaluated : {}", stats.strata.len());
    println!("  fixpoint iterations: {}", stats.iterations);
    println!("  queries issued   : {}", stats.queries_issued);
    println!("  tuples considered: {}", stats.tuples_considered);
    println!("  set difference   : {} OPSD / {} TPSD runs", stats.opsd_runs, stats.tpsd_runs);
    println!("  PBME used        : {}", stats.strata.iter().any(|s| s.pbme));
    println!("  total time       : {:?}", stats.total);

    // Inline facts work too, and so do negation and aggregation:
    let mut engine = RecStep::new(Config::default().threads(2))?;
    let stats = engine.run_source(
        "arc(1, 2). arc(2, 3).
         tc(x, y) :- arc(x, y).
         tc(x, y) :- tc(x, z), arc(z, y).
         gtc(x, COUNT(y)) :- tc(x, y).",
    )?;
    println!("\nper-vertex reachability counts (gtc):");
    let mut rows = engine.rows("gtc").unwrap();
    rows.sort();
    for row in &rows {
        println!("  gtc({}, {})", row[0], row[1]);
    }
    let _ = stats;
    Ok(())
}
