//! Quickstart: the Engine / Database / PreparedProgram flow on transitive
//! closure — compile once, run over two different graphs, read results
//! through zero-copy handles.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use recstep::{Database, Engine};

fn main() -> recstep::Result<()> {
    // A Datalog program (Example 1 of the paper): the transitive closure of
    // a directed graph given as the EDB relation `arc`.
    let program = "
        tc(x, y) :- arc(x, y).
        tc(x, y) :- tc(x, z), arc(z, y).
    ";

    // 1. Engine: immutable machinery — configuration, worker pool, planner.
    //    Defaults turn on every paper optimization (UIE, OOF, DSD, EOST,
    //    FAST-DEDUP) plus PBME auto-detection, on all cores.
    let engine = Engine::builder().build()?;

    // 2. PreparedProgram: parse + analyze + compile exactly once. The
    //    prepared program is Send + Sync and runnable any number of times.
    let tc = engine.prepare(program)?;

    // 3. Database: the data. Load the input graph — a chain with a
    //    shortcut and a cycle.
    let mut db = Database::new()?;
    db.load_edges("arc", &[(0, 1), (1, 2), (2, 3), (0, 2), (3, 0)])?;

    let stats = tc.run(&mut db)?;

    // 4. Results come back as zero-copy handles over the stored columns:
    //    iterate, decode typed tuples, or materialize explicitly.
    let result = db.relation("tc").expect("tc exists after the run");
    println!("tc has {} facts:", result.len());
    let mut pairs = result.as_pairs()?;
    pairs.sort_unstable();
    for (x, y) in &pairs {
        println!("  tc({x}, {y})");
    }

    println!("\nengine report:");
    println!("  strata evaluated : {}", stats.strata.len());
    println!("  fixpoint iterations: {}", stats.iterations);
    println!("  queries issued   : {}", stats.queries_issued);
    println!("  tuples considered: {}", stats.tuples_considered);
    println!(
        "  set difference   : {} OPSD / {} TPSD runs",
        stats.opsd_runs, stats.tpsd_runs
    );
    println!(
        "  PBME used        : {}",
        stats.strata.iter().any(|s| s.pbme)
    );
    println!("  total time       : {:?}", stats.total);

    // The same prepared program runs over any other database — no
    // re-parse, no re-compile.
    let mut other = Database::new()?;
    other.load_edges("arc", &[(10, 11), (11, 12)])?;
    tc.run(&mut other)?;
    println!(
        "\nsame compiled program over a second graph: {} facts",
        other.row_count("tc")
    );

    // Inline facts work too, and so do negation and aggregation:
    let gtc = engine.prepare(
        "arc(1, 2). arc(2, 3).
         tc(x, y) :- arc(x, y).
         tc(x, y) :- tc(x, z), arc(z, y).
         gtc(x, COUNT(y)) :- tc(x, y).",
    )?;
    let mut db = Database::new()?;
    gtc.run(&mut db)?;
    println!("\nper-vertex reachability counts (gtc):");
    let mut rows = db.relation("gtc").expect("gtc exists").as_pairs()?;
    rows.sort_unstable();
    for (v, count) in &rows {
        println!("  gtc({v}, {count})");
    }
    Ok(())
}
