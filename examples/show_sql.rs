//! Render the SQL RecStep would issue to its RDBMS backend — the unified
//! IDB evaluation (UIE) query versus per-rule individual evaluation, for
//! the Andersen program (reproducing the paper's Figure 4).
//!
//! ```sh
//! cargo run --example show_sql
//! ```

use recstep::{compile_source, sqlgen};

fn main() -> recstep::Result<()> {
    let program = recstep::programs::ANDERSEN;
    println!("Datalog program:\n{program}");
    let compiled = compile_source(program)?;
    for (si, stratum) in compiled.strata.iter().enumerate() {
        println!(
            "--- stratum {si} ({}) ---",
            if stratum.recursive {
                "recursive"
            } else {
                "non-recursive"
            }
        );
        for idb in &stratum.idbs {
            println!("\n# Unified IDB Evaluation (UIE) for {}:", idb.rel);
            println!("{}", sqlgen::render_uie(idb));
            if stratum.recursive {
                println!("\n# Individual IDB Evaluation for {}:", idb.rel);
                println!("{}", sqlgen::render_iie(idb));
            }
        }
    }
    Ok(())
}
