//! Graph analytics on a generated RMAT graph: REACH, CC and SSSP — the
//! workloads of the paper's Figures 12/13 — with a cross-check against the
//! naïve oracle on a small sample.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use recstep::{Config, RecStep};
use recstep_graphgen::{as_values, rmat::rmat, with_weights};

fn main() -> recstep::Result<()> {
    let n = 20_000u32;
    let edges = rmat(n, n as usize * 10, 42);
    println!("RMAT graph: {} vertices, {} edges", n, edges.len());

    // REACH from one source.
    let mut engine = RecStep::new(Config::default())?;
    engine.load_edges("arc", &as_values(&edges))?;
    engine.load_relation("id", 1, &[vec![0]])?;
    let stats = engine.run_source(recstep::programs::REACH)?;
    println!(
        "REACH: {} vertices reachable from 0 in {:?} ({} iterations)",
        engine.row_count("reach"),
        stats.total,
        stats.iterations
    );

    // Connected components via recursive MIN aggregation.
    let mut engine = RecStep::new(Config::default())?;
    engine.load_edges("arc", &as_values(&edges))?;
    let stats = engine.run_source(recstep::programs::CC)?;
    println!(
        "CC: {} labelled vertices, {} distinct components, {:?}",
        engine.row_count("cc3"),
        engine.row_count("cc"),
        stats.total
    );

    // Single-source shortest paths over weighted edges.
    let weighted = with_weights(&edges, 100, 7);
    let mut engine = RecStep::new(Config::default())?;
    engine.load_weighted_edges("arc", &weighted)?;
    engine.load_relation("id", 1, &[vec![0]])?;
    let stats = engine.run_source(recstep::programs::SSSP)?;
    println!(
        "SSSP: distances to {} vertices, {:?}",
        engine.row_count("sssp"),
        stats.total
    );

    // Differential check against the naive oracle on a small subgraph.
    let small = rmat(500, 2_000, 1);
    let mut engine = RecStep::new(Config::default().threads(4))?;
    engine.load_edges("arc", &as_values(&small))?;
    engine.run_source(recstep::programs::CC)?;
    let mut oracle = recstep_baselines::naive::NaiveEngine::new();
    oracle.load_edges("arc", &as_values(&small));
    oracle.run_source(recstep::programs::CC)?;
    let got: std::collections::BTreeSet<Vec<i64>> =
        engine.rows("cc3").unwrap().into_iter().collect();
    let expect: std::collections::BTreeSet<Vec<i64>> =
        oracle.rows("cc3").unwrap().iter().cloned().collect();
    assert_eq!(got, expect, "engine and naive oracle must agree");
    println!("cross-check vs naive oracle on 500-vertex sample: OK");
    Ok(())
}
