//! Graph analytics on a generated RMAT graph: REACH, CC and SSSP — the
//! workloads of the paper's Figures 12/13 — with a cross-check against the
//! naïve oracle on a small sample.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use recstep::{Database, Engine};
use recstep_graphgen::{as_values, rmat::rmat, with_weights};

fn main() -> recstep::Result<()> {
    let n = 20_000u32;
    let edges = rmat(n, n as usize * 10, 42);
    println!("RMAT graph: {} vertices, {} edges", n, edges.len());

    // One engine serves every workload below; each program compiles once.
    let engine = Engine::builder().build()?;

    // REACH from one source.
    let mut db = Database::new()?;
    db.load_edges("arc", &as_values(&edges))?;
    db.load_relation("id", 1, &[vec![0]])?;
    let stats = engine.prepare(recstep::programs::REACH)?.run(&mut db)?;
    println!(
        "REACH: {} vertices reachable from 0 in {:?} ({} iterations)",
        db.row_count("reach"),
        stats.total,
        stats.iterations
    );

    // Connected components via recursive MIN aggregation.
    let cc = engine.prepare(recstep::programs::CC)?;
    let mut db = Database::new()?;
    db.load_edges("arc", &as_values(&edges))?;
    let stats = cc.run(&mut db)?;
    println!(
        "CC: {} labelled vertices, {} distinct components, {:?}",
        db.row_count("cc3"),
        db.row_count("cc"),
        stats.total
    );

    // Single-source shortest paths over weighted edges.
    let weighted = with_weights(&edges, 100, 7);
    let mut db = Database::new()?;
    db.load_weighted_edges("arc", &weighted)?;
    db.load_relation("id", 1, &[vec![0]])?;
    let stats = engine.prepare(recstep::programs::SSSP)?.run(&mut db)?;
    println!(
        "SSSP: distances to {} vertices, {:?}",
        db.row_count("sssp"),
        stats.total
    );

    // Differential check against the naive oracle on a small subgraph:
    // the CC program compiled above runs unchanged over a second database.
    let small = rmat(500, 2_000, 1);
    let mut db = Database::new()?;
    db.load_edges("arc", &as_values(&small))?;
    cc.run(&mut db)?;
    let mut oracle = recstep_baselines::naive::NaiveEngine::new();
    oracle.load_edges("arc", &as_values(&small));
    oracle.run_source(recstep::programs::CC)?;
    let got: std::collections::BTreeSet<Vec<i64>> =
        db.relation("cc3").unwrap().to_vec().into_iter().collect();
    let expect: std::collections::BTreeSet<Vec<i64>> =
        oracle.rows("cc3").unwrap().iter().cloned().collect();
    assert_eq!(got, expect, "engine and naive oracle must agree");
    println!("cross-check vs naive oracle on 500-vertex sample: OK");
    Ok(())
}
