//! Static program analysis with Datalog: Andersen's points-to analysis and
//! the context-sensitive analyses (CSPA, CSDA) of the paper's §6, over
//! generated program graphs.
//!
//! ```sh
//! cargo run --release --example program_analysis
//! ```

use recstep::{Config, PbmeMode, RecStep};
use recstep_graphgen::program_analysis as pa;

fn main() -> recstep::Result<()> {
    // Andersen's analysis: non-linear recursion (two pointsTo atoms per
    // rule body).
    let input = pa::andersen(3_000, 1);
    let mut engine = RecStep::new(Config::default())?;
    engine.load_edges("addressOf", &input.address_of)?;
    engine.load_edges("assign", &input.assign)?;
    engine.load_edges("load", &input.load)?;
    engine.load_edges("store", &input.store)?;
    let stats = engine.run_source(recstep::programs::ANDERSEN)?;
    println!(
        "Andersen: {} input facts -> {} pointsTo facts in {:?} ({} iterations)",
        input.len(),
        engine.row_count("pointsTo"),
        stats.total,
        stats.iterations
    );

    // CSPA: mutual recursion across valueFlow / valueAlias / memoryAlias.
    let cspa = pa::cspa(400, 12, 2);
    let mut engine = RecStep::new(Config::default())?;
    engine.load_edges("assign", &cspa.assign)?;
    engine.load_edges("dereference", &cspa.dereference)?;
    let stats = engine.run_source(recstep::programs::CSPA)?;
    println!(
        "CSPA: vf={} va={} ma={} in {:?} ({} iterations — few, heavy rounds)",
        engine.row_count("valueFlow"),
        engine.row_count("valueAlias"),
        engine.row_count("memoryAlias"),
        stats.total,
        stats.iterations
    );

    // CSDA: ~chain-length iterations with tiny deltas — the opposite
    // regime (PBME off to exercise the tuple path the paper measures).
    let csda = pa::csda(50, 600, 3);
    let mut engine = RecStep::new(Config::default().pbme(PbmeMode::Off))?;
    engine.load_edges("arc", &csda.arc)?;
    engine.load_edges("nullEdge", &csda.null_edge)?;
    let stats = engine.run_source(recstep::programs::CSDA)?;
    println!(
        "CSDA: {} null facts in {:?} ({} iterations — many, cheap rounds)",
        engine.row_count("null"),
        stats.total,
        stats.iterations
    );
    Ok(())
}
