//! Static program analysis with Datalog: Andersen's points-to analysis and
//! the context-sensitive analyses (CSPA, CSDA) of the paper's §6, over
//! generated program graphs.
//!
//! ```sh
//! cargo run --release --example program_analysis
//! ```

use recstep::{Database, Engine, PbmeMode};
use recstep_graphgen::program_analysis as pa;

fn main() -> recstep::Result<()> {
    let engine = Engine::builder().build()?;

    // Andersen's analysis: non-linear recursion (two pointsTo atoms per
    // rule body). All four input relations land in one transaction.
    let input = pa::andersen(3_000, 1);
    let mut db = Database::new()?;
    let mut tx = db.transaction();
    tx.load_edges("addressOf", &input.address_of)?;
    tx.load_edges("assign", &input.assign)?;
    tx.load_edges("load", &input.load)?;
    tx.load_edges("store", &input.store)?;
    tx.commit()?;
    let stats = engine.prepare(recstep::programs::ANDERSEN)?.run(&mut db)?;
    println!(
        "Andersen: {} input facts -> {} pointsTo facts in {:?} ({} iterations)",
        input.len(),
        db.row_count("pointsTo"),
        stats.total,
        stats.iterations
    );

    // CSPA: mutual recursion across valueFlow / valueAlias / memoryAlias.
    let cspa = pa::cspa(400, 12, 2);
    let mut db = Database::new()?;
    db.load_edges("assign", &cspa.assign)?;
    db.load_edges("dereference", &cspa.dereference)?;
    let stats = engine.prepare(recstep::programs::CSPA)?.run(&mut db)?;
    println!(
        "CSPA: vf={} va={} ma={} in {:?} ({} iterations — few, heavy rounds)",
        db.row_count("valueFlow"),
        db.row_count("valueAlias"),
        db.row_count("memoryAlias"),
        stats.total,
        stats.iterations
    );

    // CSDA: ~chain-length iterations with tiny deltas — the opposite
    // regime (PBME off to exercise the tuple path the paper measures).
    let csda = pa::csda(50, 600, 3);
    let tuple_engine = Engine::builder().pbme(PbmeMode::Off).build()?;
    let mut db = Database::new()?;
    db.load_edges("arc", &csda.arc)?;
    db.load_edges("nullEdge", &csda.null_edge)?;
    let stats = tuple_engine
        .prepare(recstep::programs::CSDA)?
        .run(&mut db)?;
    println!(
        "CSDA: {} null facts in {:?} ({} iterations — many, cheap rounds)",
        db.row_count("null"),
        stats.total,
        stats.iterations
    );
    Ok(())
}
